/**
 * @file
 * Byte-identity of the registry-based CLI against the pre-refactor
 * monolithic pinpoint_cli. The fixtures under tests/cli/golden/
 * were captured from the old binary (PR 3 state) on fixed
 * workloads; the rebuilt commands — now thin projections of an
 * api::Study — must reproduce them exactly, proving the API
 * redesign changed structure and cost, not results.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/commands.h"

namespace pinpoint {
namespace cli {
namespace {

std::string
read_file(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
golden(const std::string &name)
{
    return read_file(std::string(PINPOINT_SOURCE_DIR) +
                     "/tests/cli/golden/" + name);
}

/** Runs the registry CLI; returns captured stdout-equivalent. */
std::string
run_out(const std::vector<std::string> &args, int expect_code = 0)
{
    const CommandRegistry registry = make_default_registry();
    std::ostringstream out;
    std::ostringstream err;
    CommandIo io{out, err};
    EXPECT_EQ(run_cli(registry, args, io), expect_code) << err.str();
    return out.str();
}

TEST(GoldenOutput, CharacterizeMatchesThePreRefactorCli)
{
    EXPECT_EQ(run_out({"characterize", "--model", "mlp", "--batch",
                       "64", "--iterations", "2"}),
              golden("characterize_mlp_b64_i2.txt"));
}

TEST(GoldenOutput, SwapValidateMatchesThePreRefactorCli)
{
    EXPECT_EQ(run_out({"swap", "--model", "resnet18", "--batch",
                       "16", "--iterations", "2", "--validate"}),
              golden("swap_resnet18_b16_i2_validate.txt"));
}

TEST(GoldenOutput, ReliefMatchesThePreRefactorCli)
{
    EXPECT_EQ(run_out({"relief", "--model", "resnet18", "--batch",
                       "16", "--iterations", "2", "--budget-ms",
                       "50"}),
              golden("relief_resnet18_b16_i2_budget50.txt"));
}

TEST(GoldenOutput, SweepCsvMatchesThePreRefactorCli)
{
    const std::string path =
        testing::TempDir() + "pinpoint_golden_sweep.csv";
    run_out({"sweep", "--models", "mlp,resnet18", "--batches", "16",
             "--allocators", "caching,direct", "--iterations", "2",
             "--jobs", "2", "--quiet", "--csv", path});
    EXPECT_EQ(read_file(path), golden("sweep_small.csv"));
    std::remove(path.c_str());
}

TEST(GoldenOutput, InferCharacterizeMatchesTheFixture)
{
    // The serving report is seeded by the spec id, so the same
    // invocation replays the same traffic — fixture bytes included.
    EXPECT_EQ(run_out({"characterize", "--model", "mlp", "--batch",
                       "8", "--mode", "infer", "--requests", "12"}),
              golden("characterize_mlp_b8_infer_r12.txt"));
}

TEST(GoldenOutput, ServingSweepCsvMatchesTheFixture)
{
    const std::string path =
        testing::TempDir() + "pinpoint_golden_serving_sweep.csv";
    run_out({"sweep", "--models", "mlp", "--batches", "8",
             "--allocators", "caching", "--modes", "train,infer",
             "--dtypes", "f32,f16", "--requests", "6",
             "--iterations", "2", "--jobs", "4", "--quiet", "--csv",
             path});
    EXPECT_EQ(read_file(path), golden("sweep_serving_small.csv"));
    std::remove(path.c_str());
}

TEST(GoldenOutput, RepeatedRunsAreByteIdenticalThroughTheSharedView)
{
    // PR 5 re-verification: with every command routed through one
    // shared TraceView per run, a repeated invocation must still
    // reproduce the fixture bytes — the shared snapshot carries no
    // state between runs.
    const std::vector<std::string> args = {
        "characterize", "--model", "mlp",
        "--batch",      "64",      "--iterations",
        "2"};
    const std::string first = run_out(args);
    EXPECT_EQ(first, golden("characterize_mlp_b64_i2.txt"));
    EXPECT_EQ(first, run_out(args));
}

TEST(GoldenOutput, SwapPlanAliasMatchesTheNewSpelling)
{
    const std::vector<std::string> tail = {
        "--model", "mlp", "--batch", "16", "--iterations", "2"};
    std::vector<std::string> as_swap = {"swap"};
    std::vector<std::string> as_alias = {"swap-plan"};
    as_swap.insert(as_swap.end(), tail.begin(), tail.end());
    as_alias.insert(as_alias.end(), tail.begin(), tail.end());
    EXPECT_EQ(run_out(as_swap), run_out(as_alias));
}

}  // namespace
}  // namespace cli
}  // namespace pinpoint
