/**
 * @file
 * The command registry and its exit-code contract: 0 for
 * informational success, 1 for runtime failures, 2 for usage
 * errors. Also pins the generated documentation: docs/CLI.md is
 * exactly render_cli_markdown() of the live registry, so the
 * reference cannot drift from the code.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/commands.h"
#include "core/check.h"

namespace pinpoint {
namespace cli {
namespace {

/** Runs the default registry on @p args; captures streams. */
struct CliRun {
    int exit_code;
    std::string out;
    std::string err;
};

CliRun
run(const std::vector<std::string> &args)
{
    const CommandRegistry registry = make_default_registry();
    std::ostringstream out;
    std::ostringstream err;
    CommandIo io{out, err};
    const int code = run_cli(registry, args, io);
    return {code, out.str(), err.str()};
}

TEST(Registry, ShipsEveryCommand)
{
    const CommandRegistry registry = make_default_registry();
    for (const char *name :
         {"characterize", "swap", "relief", "bandwidth", "models",
          "sweep", "sweep-merge", "help"})
        EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.commands().size(), 8u);
}

TEST(Registry, FindsCompatibilityAliases)
{
    const CommandRegistry registry = make_default_registry();
    ASSERT_NE(registry.find("swap-plan"), nullptr);
    EXPECT_EQ(registry.find("swap-plan")->name, "swap");
    EXPECT_EQ(registry.find("frobnicate"), nullptr);
}

TEST(Registry, RejectsDuplicateNames)
{
    CommandRegistry registry;
    Command c;
    c.name = "dup";
    registry.add(c);
    EXPECT_THROW(registry.add(Command{c}), Error);

    // Aliases share the name space in both directions.
    Command aliased;
    aliased.name = "other";
    aliased.aliases = {"dup"};
    EXPECT_THROW(registry.add(aliased), Error);
    aliased.aliases = {"alt"};
    registry.add(aliased);
    Command steals_alias;
    steals_alias.name = "alt";
    EXPECT_THROW(registry.add(steals_alias), Error);
}

TEST(ExitCodes, EmptyCommandLineIsAUsageError)
{
    const CliRun r = run({});
    EXPECT_EQ(r.exit_code, kExitUsage);
    EXPECT_NE(r.err.find("usage: pinpoint_cli"), std::string::npos);
    EXPECT_TRUE(r.out.empty());
}

TEST(ExitCodes, UnknownCommandIsAUsageError)
{
    const CliRun r = run({"frobnicate"});
    EXPECT_EQ(r.exit_code, kExitUsage);
    EXPECT_NE(r.err.find("unknown command 'frobnicate'"),
              std::string::npos);
}

TEST(ExitCodes, HelpIsInformationalSuccess)
{
    const CliRun top = run({"help"});
    EXPECT_EQ(top.exit_code, kExitOk);
    EXPECT_NE(top.out.find("usage: pinpoint_cli"),
              std::string::npos);

    const CliRun per = run({"help", "sweep"});
    EXPECT_EQ(per.exit_code, kExitOk);
    EXPECT_NE(per.out.find("pinpoint_cli sweep"), std::string::npos);
    EXPECT_NE(per.out.find("--jobs"), std::string::npos);

    const CliRun bad = run({"help", "frobnicate"});
    EXPECT_EQ(bad.exit_code, kExitUsage);

    // --markdown renders the whole reference; combining it with a
    // topic would silently drop the topic, so it is rejected.
    const CliRun conflict = run({"help", "sweep", "--markdown"});
    EXPECT_EQ(conflict.exit_code, kExitUsage);
    EXPECT_NE(conflict.err.find("takes no command argument"),
              std::string::npos);

    // The conventional per-command spelling works too, even mixed
    // with other (even malformed) flags.
    const CliRun dashed = run({"swap", "--batch", "16", "--help"});
    EXPECT_EQ(dashed.exit_code, kExitOk);
    EXPECT_NE(dashed.out.find("pinpoint_cli swap"),
              std::string::npos);
}

TEST(ExitCodes, ModelsAndBandwidthAreInformationalSuccess)
{
    const CliRun models = run({"models"});
    EXPECT_EQ(models.exit_code, kExitOk);
    EXPECT_NE(models.out.find("resnet50"), std::string::npos);

    const CliRun bandwidth = run({"bandwidth"});
    EXPECT_EQ(bandwidth.exit_code, kExitOk);
    EXPECT_NE(bandwidth.out.find("bandwidthTest equivalent"),
              std::string::npos);
}

TEST(ExitCodes, MalformedFlagsExitTwoWithADescriptiveError)
{
    struct Case {
        std::vector<std::string> args;
        const char *expect_in_err;
    };
    const Case cases[] = {
        {{"characterize", "--batch", "abc"},
         "--batch needs an integer, got 'abc'"},
        {{"characterize", "--batch"}, "--batch requires a value"},
        {{"characterize", "--bogus", "1"}, "unknown flag '--bogus'"},
        {{"characterize", "--model", "lenet"}, "unknown model"},
        {{"swap", "--device", "h100"}, "unknown device"},
        {{"swap", "--safety-factor", "fast"},
         "--safety-factor needs a number"},
        {{"swap", "--safety-factor", "0.5", "--model", "mlp"},
         "--safety-factor must be a finite number >= 1.0"},
        {{"swap", "--safety-factor", "nan", "--model", "mlp"},
         "--safety-factor must be a finite number >= 1.0"},
        {{"swap", "--min-block", "-1", "--model", "mlp"},
         "--min-block must be between 0 and 1048576 MiB"},
        {{"relief", "--min-block", "-1", "--model", "mlp"},
         "--min-block must be between 0 and 1048576 MiB"},
        {{"relief", "--strategy", "magic", "--model", "mlp"},
         "--strategy must be swap, recompute, peer, or hybrid"},
        {{"relief", "--strategy", "peer", "--model", "mlp"},
         "--strategy peer needs a multi-device workload"},
        {{"relief", "--devices", "2", "--topology", "token-ring"},
         "unknown topology"},
        {{"characterize", "--devices", "0"},
         "--devices must be >= 1"},
        {{"characterize", "--devices", "two"},
         "--devices needs an integer, got 'two'"},
        {{"relief", "--budget-ms", "-1", "--model", "mlp"},
         "--budget-ms must be a finite number >= 0"},
        {{"relief", "--budget-ms", "nan", "--model", "mlp"},
         "--budget-ms must be a finite number >= 0"},
        {{"relief", "--budget-ms", "inf", "--model", "mlp"},
         "--budget-ms must be a finite number >= 0"},
        {{"sweep", "--jobs", "0"}, "--jobs must be >= 1"},
        {{"sweep", "--batches", "16,huge"}, "bad batch size"},
        {{"sweep", "--batches", "12abc"}, "bad batch size '12abc'"},
        {{"sweep", "--models", "nosuchmodel"}, "unknown model"},
        {{"sweep", "--device-presets", "h100"}, "unknown device"},
        {{"sweep", "--devices", "0"}, "bad device count '0'"},
        {{"sweep", "--devices", "2x"}, "bad device count '2x'"},
        {{"sweep", "--topologies", "infiniband"},
         "unknown topology"},
    };
    for (const Case &c : cases) {
        const CliRun r = run(c.args);
        EXPECT_EQ(r.exit_code, kExitUsage) << c.args[1];
        EXPECT_NE(r.err.find(c.expect_in_err), std::string::npos)
            << "missing '" << c.expect_in_err << "' in: " << r.err;
        EXPECT_NE(r.err.find("run 'pinpoint_cli help"),
                  std::string::npos)
            << r.err;
        // Wrapped library errors must read like CLI messages, not
        // leak internal file:line PP_CHECK diagnostics.
        EXPECT_EQ(r.err.find("check failed"), std::string::npos)
            << r.err;
    }
}

TEST(Docs, UsageListsEveryCommandAndTheExitContract)
{
    const CommandRegistry registry = make_default_registry();
    const std::string usage = usage_text(registry);
    for (const auto &command : registry.commands())
        EXPECT_NE(usage.find(command.name), std::string::npos)
            << command.name;
    EXPECT_NE(
        usage.find("0 success, 1 runtime failure, 2 usage error"),
        std::string::npos);
}

TEST(Docs, HelpTextCoversWorkloadAndCommandFlags)
{
    const CommandRegistry registry = make_default_registry();
    const std::string help = help_text(*registry.find("swap"));
    for (const char *flag :
         {"--model", "--batch", "--safety-factor F", "--validate",
          "--min-block MiB"})
        EXPECT_NE(help.find(flag), std::string::npos) << flag;
    EXPECT_NE(help.find("alias --safety"), std::string::npos);
    EXPECT_NE(help.find("aliases: swap-plan"), std::string::npos);
}

TEST(Docs, CliMarkdownMatchesTheCommittedReference)
{
    // docs/CLI.md is generated output: regenerate with
    //   ./build/pinpoint_cli help --markdown > docs/CLI.md
    // whenever a command or flag changes. CI runs the same diff.
    std::ifstream in(std::string(PINPOINT_SOURCE_DIR) +
                     "/docs/CLI.md");
    ASSERT_TRUE(in.good()) << "docs/CLI.md missing";
    std::ostringstream committed;
    committed << in.rdbuf();
    EXPECT_EQ(committed.str(),
              render_cli_markdown(make_default_registry()))
        << "docs/CLI.md is stale; regenerate with "
           "'pinpoint_cli help --markdown > docs/CLI.md'";
}

TEST(Docs, MarkdownRendersEveryCommandSection)
{
    const std::string md =
        render_cli_markdown(make_default_registry());
    for (const char *section :
         {"## characterize", "## swap", "## relief", "## bandwidth",
          "## models", "## sweep", "## help", "## Exit codes",
          "## Shared workload options"})
        EXPECT_NE(md.find(section), std::string::npos) << section;
}

}  // namespace
}  // namespace cli
}  // namespace pinpoint
