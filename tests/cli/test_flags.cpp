/**
 * @file
 * The strict CLI flag parser: regression tests for the three silent
 * failure modes of the old ad-hoc cursor — ignored unknown flags,
 * dangling value flags falling back to defaults, and std::stoll
 * accepting garbage — plus aliases and typed getters.
 */
#include <gtest/gtest.h>

#include "cli/flags.h"
#include "core/check.h"

namespace pinpoint {
namespace cli {
namespace {

std::vector<FlagSpec>
specs()
{
    return {
        {"batch", FlagKind::kValue, "N", "32", "batch size", {}},
        {"safety-factor", FlagKind::kValue, "F", "1.0", "headroom",
         {"safety"}},
        {"validate", FlagKind::kBool, "", "", "execute the plan",
         {"aggressive"}},
        {"csv", FlagKind::kValue, "PATH", "", "export", {}},
    };
}

TEST(ParseArgs, ValueAndBoolFlags)
{
    const ParsedArgs parsed = parse_args(
        specs(), {"--batch", "16", "--validate", "--csv", "out.csv"});
    EXPECT_EQ(parsed.value("batch", ""), "16");
    EXPECT_TRUE(parsed.flag("validate"));
    EXPECT_EQ(parsed.value("csv", ""), "out.csv");
    EXPECT_FALSE(parsed.has("safety-factor"));
}

TEST(ParseArgs, AliasesFoldOntoTheCanonicalName)
{
    const ParsedArgs parsed =
        parse_args(specs(), {"--safety", "1.5", "--aggressive"});
    EXPECT_EQ(parsed.value("safety-factor", ""), "1.5");
    EXPECT_TRUE(parsed.flag("validate"));
}

TEST(ParseArgs, RepeatedFlagKeepsTheLastValue)
{
    const ParsedArgs parsed =
        parse_args(specs(), {"--batch", "16", "--batch", "64"});
    EXPECT_EQ(parsed.value("batch", ""), "64");
}

TEST(ParseArgs, UnknownFlagIsAUsageError)
{
    // The old cursor silently ignored typos and ran the default.
    EXPECT_THROW(parse_args(specs(), {"--bogus", "1"}), UsageError);
    EXPECT_THROW(parse_args(specs(), {"--batc", "16"}), UsageError);
}

TEST(ParseArgs, PositionalTokenIsAUsageError)
{
    EXPECT_THROW(parse_args(specs(), {"16"}), UsageError);
}

TEST(ParseArgs, DanglingValueFlagIsAUsageError)
{
    // The old cursor fell back to the default when the value was
    // missing — both at the end of the line and before a flag.
    EXPECT_THROW(parse_args(specs(), {"--batch"}), UsageError);
    EXPECT_THROW(parse_args(specs(), {"--batch", "--validate"}),
                 UsageError);
}

TEST(ParseArgs, NegativeNumbersAreValuesNotFlags)
{
    const ParsedArgs parsed =
        parse_args(specs(), {"--batch", "-5"});
    EXPECT_EQ(parsed.int64_value("batch", 0), -5);
}

TEST(ParsedArgs, NumericGettersAreStrict)
{
    const ParsedArgs parsed = parse_args(
        specs(), {"--batch", "12abc", "--safety-factor", "fast"});
    EXPECT_THROW(parsed.int64_value("batch", 0), UsageError);
    EXPECT_THROW(parsed.int_value("batch", 0), UsageError);
    EXPECT_THROW(parsed.double_value("safety-factor", 0.0),
                 UsageError);
}

TEST(ParsedArgs, NumericGettersParseAndFallBack)
{
    const ParsedArgs parsed = parse_args(
        specs(), {"--batch", "64", "--safety-factor", "1.25"});
    EXPECT_EQ(parsed.int64_value("batch", 0), 64);
    EXPECT_EQ(parsed.int_value("batch", 0), 64);
    EXPECT_DOUBLE_EQ(parsed.double_value("safety-factor", 0.0),
                     1.25);
    EXPECT_EQ(parsed.int64_value("csv", 7), 7);
    EXPECT_EQ(parsed.raw("csv"), nullptr);
}

TEST(ParsedArgs, IntGetterRejectsOutOfRange)
{
    const ParsedArgs parsed =
        parse_args(specs(), {"--batch", "4294967296"});
    EXPECT_EQ(parsed.int64_value("batch", 0), 4294967296LL);
    EXPECT_THROW(parsed.int_value("batch", 0), UsageError);
}

}  // namespace
}  // namespace cli
}  // namespace pinpoint
