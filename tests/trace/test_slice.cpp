/** @file Tests for iteration-window trace slicing. */
#include <gtest/gtest.h>

#include "analysis/breakdown.h"
#include "analysis/timeline.h"
#include "analysis/trace_view.h"
#include "core/check.h"
#include "nn/models.h"
#include "runtime/session.h"
#include "trace/slice.h"

namespace pinpoint {
namespace trace {
namespace {

TraceRecorder
mlp_trace(int iterations = 6)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = iterations;
    return runtime::run_training(nn::mlp(), config).trace;
}

TEST(Slice, WindowKeepsOnlyRequestedIterations)
{
    const auto full = mlp_trace();
    const auto window = slice_iterations(full, 2, 3);
    for (const auto &e : window.events()) {
        if (e.iteration == kSetupIteration)
            continue;
        EXPECT_GE(e.iteration, 2u);
        EXPECT_LE(e.iteration, 3u);
    }
    EXPECT_LT(window.size(), full.size());
    EXPECT_GT(window.size(), 0u);
}

TEST(Slice, ResultReplaysThroughAnalyses)
{
    const auto window = slice_iterations(mlp_trace(), 1, 4);
    // Timeline and breakdown both PP_CHECK trace consistency.
    EXPECT_NO_THROW(analysis::TraceView(window).timeline());
    EXPECT_NO_THROW(analysis::occupation_breakdown(
        analysis::TraceView(window)));
    EXPECT_EQ(window.count(EventKind::kMalloc),
              window.count(EventKind::kFree))
        << "open blocks must be closed";
}

TEST(Slice, SetupCanBeDropped)
{
    SliceOptions opts;
    opts.keep_setup = false;
    const auto window = slice_iterations(mlp_trace(), 0, 1, opts);
    for (const auto &e : window.events())
        EXPECT_NE(e.iteration, kSetupIteration);
    EXPECT_NO_THROW(analysis::TraceView(window).timeline());
}

TEST(Slice, AccessesToPreWindowBlocksAreDropped)
{
    SliceOptions opts;
    opts.keep_setup = false;
    const auto window = slice_iterations(mlp_trace(), 2, 2, opts);
    // Parameters were allocated at setup (dropped): no event may
    // reference their blocks.
    const analysis::TraceView view(window);
    const analysis::Timeline &t =
        view.timeline();  // would throw on stray accesses
    for (const auto &b : t.blocks())
        EXPECT_GE(b.alloc_iteration, 2u);
}

TEST(Slice, SyntheticFreesAreLabeled)
{
    const auto window = slice_iterations(mlp_trace(), 0, 0);
    std::size_t closes = 0;
    for (const auto &e : window.events())
        if (e.op == "slice.close")
            ++closes;
    // Parameters (4) stay live past iteration 0.
    EXPECT_GE(closes, 4u);
}

TEST(Slice, InvalidWindowRejected)
{
    const auto full = mlp_trace(2);
    EXPECT_THROW(slice_iterations(full, 3, 2), Error);
}

TEST(Slice, EmptyWindowOfOutOfRangeIterations)
{
    SliceOptions opts;
    opts.keep_setup = false;
    const auto window =
        slice_iterations(mlp_trace(2), 50, 60, opts);
    EXPECT_TRUE(window.empty());
}

}  // namespace
}  // namespace trace
}  // namespace pinpoint
