/** @file Unit tests for TraceRecorder. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "trace/recorder.h"

namespace pinpoint {
namespace trace {
namespace {

MemoryEvent
event_at(TimeNs t, EventKind kind = EventKind::kRead,
         BlockId block = 1)
{
    MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = 512;
    return e;
}

TEST(TraceRecorder, RecordsInOrder)
{
    TraceRecorder r;
    r.record(event_at(10));
    r.record(event_at(10));  // ties are fine
    r.record(event_at(20));
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.events()[2].time, 20u);
}

TEST(TraceRecorder, RejectsTimeTravel)
{
    TraceRecorder r;
    r.record(event_at(10));
    EXPECT_THROW(r.record(event_at(9)), Error);
}

TEST(TraceRecorder, CountsByKind)
{
    TraceRecorder r;
    r.record(event_at(1, EventKind::kMalloc));
    r.record(event_at(2, EventKind::kWrite));
    r.record(event_at(3, EventKind::kRead));
    r.record(event_at(4, EventKind::kRead));
    r.record(event_at(5, EventKind::kFree));
    EXPECT_EQ(r.count(EventKind::kRead), 2u);
    EXPECT_EQ(r.count(EventKind::kMalloc), 1u);
    EXPECT_EQ(r.count(EventKind::kWrite), 1u);
    EXPECT_EQ(r.count(EventKind::kFree), 1u);
}

TEST(TraceRecorder, FilterSelectsMatching)
{
    TraceRecorder r;
    r.record(event_at(1, EventKind::kRead, 7));
    r.record(event_at(2, EventKind::kRead, 8));
    r.record(event_at(3, EventKind::kRead, 7));
    const auto picked = r.filter(
        [](const MemoryEvent &e) { return e.block == 7; });
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_EQ(picked[0].time, 1u);
    EXPECT_EQ(picked[1].time, 3u);
}

TEST(TraceRecorder, ClearEmptiesAndAllowsReuse)
{
    TraceRecorder r;
    r.record(event_at(100));
    r.clear();
    EXPECT_TRUE(r.empty());
    r.record(event_at(1));  // earlier time is fine after clear
    EXPECT_EQ(r.size(), 1u);
}

}  // namespace
}  // namespace trace
}  // namespace pinpoint
