/** @file Unit tests for the Chrome trace-event export. */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/check.h"
#include "trace/chrome_trace.h"

namespace pinpoint {
namespace trace {
namespace {

MemoryEvent
ev(TimeNs t, EventKind kind, BlockId block, std::size_t size,
   const std::string &op = "op")
{
    MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = size;
    e.op = op;
    return e;
}

TraceRecorder
small_trace()
{
    TraceRecorder r;
    r.record(ev(1000, EventKind::kMalloc, 1, 4096, "alloc.x"));
    r.record(ev(2000, EventKind::kWrite, 1, 4096, "fc0.mat_mul"));
    r.record(ev(3000, EventKind::kRead, 1, 4096, "fc0.backward"));
    r.record(ev(4000, EventKind::kFree, 1, 4096, "free.x"));
    return r;
}

TEST(ChromeTrace, EmitsValidJsonSkeleton)
{
    std::stringstream ss;
    write_chrome_trace(small_trace(), ss);
    const std::string out = ss.str();
    EXPECT_EQ(out.find("{\"displayTimeUnit\":\"ms\""), 0u);
    EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(out.rfind("]}\n"), out.size() - 3);
    // Balanced braces — cheap structural sanity.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(ChromeTrace, LifetimeBecomesAsyncBeginEndPair)
{
    std::stringstream ss;
    write_chrome_trace(small_trace(), ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(out.find("\"id\":1"), std::string::npos);
    // Timestamps are microseconds: 1000 ns -> 1.000 us.
    EXPECT_NE(out.find("\"ts\":1.000"), std::string::npos);
}

TEST(ChromeTrace, AccessesBecomeInstants)
{
    std::stringstream ss;
    write_chrome_trace(small_trace(), ss);
    EXPECT_NE(ss.str().find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(ss.str().find("write fc0.mat_mul"), std::string::npos);

    ChromeTraceOptions no_access;
    no_access.accesses = false;
    std::stringstream ss2;
    write_chrome_trace(small_trace(), ss2, no_access);
    EXPECT_EQ(ss2.str().find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeTrace, CountersTrackOccupancy)
{
    std::stringstream ss;
    write_chrome_trace(small_trace(), ss);
    EXPECT_NE(ss.str().find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(ss.str().find("\"intermediate\":4096"),
              std::string::npos);
    EXPECT_NE(ss.str().find("\"intermediate\":0"), std::string::npos)
        << "counter returns to zero after the free";
}

TEST(ChromeTrace, MinBlockFilterDropsSmallBlocksButNotCounters)
{
    ChromeTraceOptions opts;
    opts.min_block_bytes = 1 << 20;
    std::stringstream ss;
    write_chrome_trace(small_trace(), ss, opts);
    const std::string out = ss.str();
    EXPECT_EQ(out.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos)
        << "counters still reflect the filtered blocks";
}

TEST(ChromeTrace, EscapesSpecialCharactersInOpNames)
{
    TraceRecorder r;
    r.record(ev(0, EventKind::kMalloc, 1, 512, "weird\"op\\name"));
    std::stringstream ss;
    write_chrome_trace(r, ss);
    EXPECT_NE(ss.str().find("weird\\\"op\\\\name"),
              std::string::npos);
}

TEST(ChromeTrace, FileWriteAndBadPath)
{
    const std::string path =
        ::testing::TempDir() + "/pinpoint_chrome.json";
    write_chrome_trace_file(small_trace(), path);
    std::ifstream check(path);
    EXPECT_TRUE(check.good());
    EXPECT_THROW(
        write_chrome_trace_file(small_trace(), "/nonexistent/x.json"),
        Error);
}

}  // namespace
}  // namespace trace
}  // namespace pinpoint
