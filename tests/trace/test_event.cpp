/** @file Unit tests for MemoryEvent kinds. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "trace/event.h"

namespace pinpoint {
namespace trace {
namespace {

TEST(EventKind, NamesRoundTrip)
{
    for (auto k : {EventKind::kMalloc, EventKind::kFree,
                   EventKind::kRead, EventKind::kWrite}) {
        EXPECT_EQ(parse_event_kind(event_kind_name(k)), k);
    }
}

TEST(EventKind, NamesMatchPaperTerminology)
{
    // Sec. II: "memory behaviors (including malloc, free, read, write)"
    EXPECT_STREQ(event_kind_name(EventKind::kMalloc), "malloc");
    EXPECT_STREQ(event_kind_name(EventKind::kFree), "free");
    EXPECT_STREQ(event_kind_name(EventKind::kRead), "read");
    EXPECT_STREQ(event_kind_name(EventKind::kWrite), "write");
}

TEST(EventKind, ParseRejectsUnknown)
{
    EXPECT_THROW(parse_event_kind("alloc"), Error);
    EXPECT_THROW(parse_event_kind(""), Error);
}

TEST(MemoryEvent, DefaultsAreInert)
{
    MemoryEvent e;
    EXPECT_EQ(e.block, kInvalidBlock);
    EXPECT_EQ(e.tensor, kInvalidTensor);
    EXPECT_EQ(e.op_index, -1);
    EXPECT_TRUE(e.op.empty());
}

}  // namespace
}  // namespace trace
}  // namespace pinpoint
