/** @file Unit tests for CSV trace serialization. */
#include <gtest/gtest.h>

#include <sstream>

#include "core/check.h"
#include "nn/models.h"
#include "runtime/session.h"
#include "trace/csv.h"

namespace pinpoint {
namespace trace {
namespace {

TraceRecorder
sample_trace()
{
    TraceRecorder r;
    MemoryEvent m;
    m.time = 100;
    m.kind = EventKind::kMalloc;
    m.block = 3;
    m.ptr = 0x7f0000000000ull;
    m.size = 4096;
    m.tensor = 9;
    m.category = Category::kParameter;
    m.iteration = 0;
    m.op_index = -1;
    m.op = "alloc.fc0.weight";
    r.record(m);

    MemoryEvent w = m;
    w.time = 250;
    w.kind = EventKind::kWrite;
    w.op_index = 2;
    w.op = "fc0.mat_mul";
    r.record(w);

    MemoryEvent f = m;
    f.time = 900;
    f.kind = EventKind::kFree;
    f.tensor = kInvalidTensor;
    f.category = Category::kIntermediate;
    f.op = "free.fc0.weight";
    r.record(f);
    return r;
}

TEST(TraceCsv, RoundTripsEveryField)
{
    const TraceRecorder original = sample_trace();
    std::stringstream ss;
    write_csv(original, ss);
    const TraceRecorder parsed = read_csv(ss);

    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const auto &a = original.events()[i];
        const auto &b = parsed.events()[i];
        EXPECT_EQ(a.time, b.time);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.block, b.block);
        EXPECT_EQ(a.ptr, b.ptr);
        EXPECT_EQ(a.size, b.size);
        EXPECT_EQ(a.tensor, b.tensor);
        EXPECT_EQ(a.category, b.category);
        EXPECT_EQ(a.iteration, b.iteration);
        EXPECT_EQ(a.op_index, b.op_index);
        EXPECT_EQ(a.op, b.op);
    }
}

TEST(TraceCsv, HeaderIsStable)
{
    std::stringstream ss;
    write_csv(TraceRecorder(), ss);
    std::string header;
    std::getline(ss, header);
    EXPECT_EQ(header,
              "time_ns,kind,block,ptr,size,tensor,category,iteration,"
              "op_index,op");
}

TEST(TraceCsv, RejectsEmptyInput)
{
    std::stringstream ss;
    EXPECT_THROW(read_csv(ss), Error);
}

TEST(TraceCsv, RejectsBadHeader)
{
    std::stringstream ss("time,kind\n");
    EXPECT_THROW(read_csv(ss), Error);
}

TEST(TraceCsv, RejectsMalformedRows)
{
    std::stringstream missing(
        "time_ns,kind,block,ptr,size,tensor,category,iteration,"
        "op_index,op\n"
        "1,malloc,2,3\n");
    EXPECT_THROW(read_csv(missing), Error);

    std::stringstream garbage(
        "time_ns,kind,block,ptr,size,tensor,category,iteration,"
        "op_index,op\n"
        "abc,malloc,2,3,4,5,parameter,0,-1,x\n");
    EXPECT_THROW(read_csv(garbage), Error);

    std::stringstream bad_kind(
        "time_ns,kind,block,ptr,size,tensor,category,iteration,"
        "op_index,op\n"
        "1,munmap,2,3,4,5,parameter,0,-1,x\n");
    EXPECT_THROW(read_csv(bad_kind), Error);
}

TEST(TraceCsv, ToleratesCrLfAndBlankLines)
{
    std::stringstream ss(
        "time_ns,kind,block,ptr,size,tensor,category,iteration,"
        "op_index,op\r\n"
        "1,malloc,2,3,512,-,input,0,-1,alloc.x\r\n"
        "\n");
    const auto r = read_csv(ss);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.events()[0].tensor, kInvalidTensor);
    EXPECT_EQ(r.events()[0].category, Category::kInput);
}

TEST(TraceCsv, FileRoundTripOfARealTrainingTrace)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = 2;
    const auto result = runtime::run_training(nn::mlp(), config);

    const std::string path =
        ::testing::TempDir() + "/pinpoint_trace.csv";
    write_csv_file(result.trace, path);
    const TraceRecorder parsed = read_csv_file(path);
    ASSERT_EQ(parsed.size(), result.trace.size());
    // Spot-check equality at both ends.
    EXPECT_EQ(parsed.events().front().op,
              result.trace.events().front().op);
    EXPECT_EQ(parsed.events().back().time,
              result.trace.events().back().time);
}

TEST(TraceCsv, MissingFileThrows)
{
    EXPECT_THROW(read_csv_file("/nonexistent/trace.csv"), Error);
}

}  // namespace
}  // namespace trace
}  // namespace pinpoint
