/**
 * @file
 * Sweep exporters: stable CSV schema, well-formed JSON, correct
 * escaping, and reproducible bytes.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/check.h"
#include "sweep/driver.h"
#include "sweep/export.h"

namespace pinpoint {
namespace sweep {
namespace {

/** @return line @p n (0-based) of @p text. */
std::string
line(const std::string &text, std::size_t n)
{
    std::istringstream is(text);
    std::string current;
    for (std::size_t i = 0; i <= n; ++i)
        if (!std::getline(is, current))
            return "";
    return current;
}

std::size_t
count_lines(const std::string &text)
{
    std::size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    return lines;
}

SweepReport
tiny_report()
{
    SweepGrid grid;
    grid.models = {"mlp"};
    grid.batches = {16, 32};
    grid.allocators = {runtime::AllocatorKind::kCaching};
    return run_sweep(grid);
}

TEST(SweepExport, CsvSchemaIsStable)
{
    const auto csv = sweep_csv_string(tiny_report());
    EXPECT_EQ(line(csv, 0),
              "model,batch,allocator,device,iterations,status,error,"
              "peak_total_bytes,peak_input_bytes,peak_parameter_bytes,"
              "peak_intermediate_bytes,peak_reserved_bytes,"
              "device_fragmentation,iteration_time_ns,end_time_ns,"
              "alloc_count,cache_hit_count,device_alloc_count,"
              "event_count,ati_count,ati_median_us,ati_p90_us,"
              "ati_max_us,swap_decisions,swap_peak_reduction_bytes,"
              "swap_total_bytes,swap_measured_peak_reduction_bytes,"
              "swap_predicted_stall_ns,swap_measured_stall_ns,"
              "swap_link_busy_fraction,relief_strategy,"
              "relief_peak_reduction_bytes,relief_overhead_ns");
    EXPECT_EQ(count_lines(csv), 3u);  // header + 2 scenarios
    EXPECT_EQ(line(csv, 1).substr(0, 24), "mlp,16,caching,titan-x,5");
}

TEST(SweepExport, CsvEscapesReservedCharacters)
{
    SweepReport report;
    ScenarioResult r;
    r.scenario.model = "mlp";
    r.status = ScenarioStatus::kError;
    r.error = "bad, \"worse\"\nsecond line";
    report.results.push_back(r);
    const auto csv = sweep_csv_string(report);
    // Field quoted, quotes doubled, and only the first line kept.
    EXPECT_NE(line(csv, 1).find("\"bad, \"\"worse\"\"\""),
              std::string::npos);
    EXPECT_EQ(count_lines(csv), 2u);
}

TEST(SweepExport, JsonIsBalancedAndCarriesSummary)
{
    const auto report = tiny_report();
    const auto json = sweep_json_string(report);
    std::size_t braces = 0, brackets = 0;
    for (char c : json) {
        if (c == '{') ++braces;
        if (c == '}') --braces;
        if (c == '[') ++brackets;
        if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0u);
    EXPECT_EQ(brackets, 0u);
    EXPECT_NE(json.find("\"scenarios\": ["), std::string::npos);
    EXPECT_NE(json.find("\"summary\": {\"scenarios\": 2, "
                        "\"succeeded\": 2, \"oom\": 0, "
                        "\"failed\": 0}"),
              std::string::npos);
    EXPECT_NE(json.find("\"model\": \"mlp\""), std::string::npos);
    // The measured-vs-predicted swap columns ride along per row.
    EXPECT_NE(json.find("\"swap_measured_peak_reduction_bytes\""),
              std::string::npos);
    EXPECT_NE(json.find("\"swap_measured_stall_ns\""),
              std::string::npos);
    EXPECT_NE(json.find("\"swap_link_busy_fraction\""),
              std::string::npos);
    // The unified-relief winner columns ride along too.
    EXPECT_NE(json.find("\"relief_strategy\""), std::string::npos);
    EXPECT_NE(json.find("\"relief_peak_reduction_bytes\""),
              std::string::npos);
    EXPECT_NE(json.find("\"relief_overhead_ns\""),
              std::string::npos);
}

TEST(SweepExport, JsonEscapesErrorStrings)
{
    SweepReport report;
    ScenarioResult r;
    r.scenario.model = "mlp";
    r.status = ScenarioStatus::kError;
    r.error = "path \"x\\y\"";
    report.results.push_back(r);
    const auto json = sweep_json_string(report);
    EXPECT_NE(json.find("\"error\": \"path \\\"x\\\\y\\\"\""),
              std::string::npos);
}

TEST(SweepExport, RepeatedExportIsByteIdentical)
{
    const auto report = tiny_report();
    EXPECT_EQ(sweep_csv_string(report), sweep_csv_string(report));
    EXPECT_EQ(sweep_json_string(report), sweep_json_string(report));
    // And a re-run of the same grid reproduces the same bytes.
    EXPECT_EQ(sweep_csv_string(report),
              sweep_csv_string(tiny_report()));
}

TEST(SweepExport, TableHasOneRowPerScenario)
{
    const auto report = tiny_report();
    std::ostringstream os;
    write_sweep_table(report, os);
    // header + 2 scenarios + summary line
    EXPECT_EQ(count_lines(os.str()), 4u);
    EXPECT_NE(os.str().find("2 scenarios: 2 ok, 0 oom, 0 failed"),
              std::string::npos);
}

TEST(SweepExport, FileWritersRejectBadPaths)
{
    const auto report = tiny_report();
    EXPECT_THROW(
        write_sweep_csv_file(report, "/nonexistent-dir/out.csv"),
        Error);
    EXPECT_THROW(
        write_sweep_json_file(report, "/nonexistent-dir/out.json"),
        Error);
}

// --- ScenarioResult record codec ---------------------------------

/** Splits @p text into its lines (no trailing empties). */
std::vector<std::string>
split_lines(const std::string &text)
{
    std::istringstream is(text);
    std::vector<std::string> lines;
    std::string current;
    while (std::getline(is, current))
        lines.push_back(current);
    return lines;
}

/** A result with every field set to a distinctive value. */
ScenarioResult
distinctive_result()
{
    ScenarioResult r;
    r.scenario.model = "alexnet";
    r.scenario.batch = 48;
    r.scenario.iterations = 7;
    r.scenario.devices = 2;
    r.scenario.topology = "nvlink";
    r.status = ScenarioStatus::kError;
    r.error = "line one\nline two \\ with backslash\r";
    r.peak_total_bytes = 111;
    r.peak_input_bytes = 222;
    r.peak_parameter_bytes = 333;
    r.peak_intermediate_bytes = 444;
    r.peak_reserved_bytes = 555;
    r.device_fragmentation = 0.25;
    r.iteration_time = 666;
    r.end_time = 777;
    r.alloc_count = 888;
    r.cache_hit_count = 999;
    r.device_alloc_count = 1010;
    r.event_count = 1111;
    r.ati_count = 1212;
    r.ati_median_us = 1.5;
    r.ati_p90_us = 2.5;
    r.ati_max_us = 3.5;
    r.swap_decisions = 13;
    r.swap_peak_reduction_bytes = 1414;
    r.swap_total_bytes = 1515;
    r.swap_measured_peak_reduction_bytes = 1616;
    r.swap_predicted_stall_ns = 1717;
    r.swap_measured_stall_ns = 1818;
    r.swap_link_busy_fraction = 0.75;
    r.scaling_efficiency = 0.875;
    r.interconnect_busy_fraction = 0.125;
    r.allreduce_time_ns = 1919;
    r.allreduce_stall_ns = 2020;
    r.requests = 21;
    r.latency_p50_ns = 2222;
    r.latency_p90_ns = 2323;
    r.latency_p99_ns = 2424;
    r.latency_max_ns = 2525;
    r.relief_strategy = "hybrid";
    r.relief_peak_reduction_bytes = 2626;
    r.relief_overhead_ns = 2727;
    return r;
}

TEST(ResultRecordCodec, RoundTripsEveryField)
{
    const ScenarioResult original = distinctive_result();
    const std::string encoded = encode_result_record(original);
    const auto lines = split_lines(encoded);
    ASSERT_EQ(lines.size(), result_record_lines());

    const ScenarioResult decoded = decode_result_record(lines, 0);
    // Field-by-field equality via the codec itself: identical
    // encodings mean identical field values (and identical export
    // bytes, since both use the same formatting).
    EXPECT_EQ(encode_result_record(decoded), encoded);
    EXPECT_EQ(decoded.scenario.id(), original.scenario.id());
    EXPECT_EQ(decoded.error, original.error);
    EXPECT_EQ(decoded.requests, original.requests);
    EXPECT_EQ(decoded.relief_strategy, original.relief_strategy);
}

TEST(ResultRecordCodec, DecodedResultsExportByteIdentically)
{
    const auto report = tiny_report();
    SweepReport decoded = report;
    for (auto &r : decoded.results)
        r = decode_result_record(
            split_lines(encode_result_record(r)), 0);
    EXPECT_EQ(sweep_csv_string(decoded), sweep_csv_string(report));
    EXPECT_EQ(sweep_json_string(decoded),
              sweep_json_string(report));
}

TEST(ResultRecordCodec, SaltIsStableHex16)
{
    const std::string salt = result_schema_salt();
    ASSERT_EQ(salt.size(), 16u);
    for (char c : salt)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << c;
    EXPECT_EQ(salt, result_schema_salt());
}

TEST(ResultRecordCodec, DecodeRejectsTamperedRecords)
{
    const auto lines =
        split_lines(encode_result_record(distinctive_result()));

    auto truncated = lines;
    truncated.pop_back();
    EXPECT_THROW(decode_result_record(truncated, 0), Error);

    auto renamed = lines;
    renamed[3] = "not_a_field=1";
    EXPECT_THROW(decode_result_record(renamed, 0), Error);

    auto bad_number = lines;
    bad_number[3] = "peak_total_bytes=12abc";
    EXPECT_THROW(decode_result_record(bad_number, 0), Error);

    auto bad_status = lines;
    bad_status[1] = "status=meh";
    EXPECT_THROW(decode_result_record(bad_status, 0), Error);
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint
