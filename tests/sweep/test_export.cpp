/**
 * @file
 * Sweep exporters: stable CSV schema, well-formed JSON, correct
 * escaping, and reproducible bytes.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/check.h"
#include "sweep/driver.h"
#include "sweep/export.h"

namespace pinpoint {
namespace sweep {
namespace {

/** @return line @p n (0-based) of @p text. */
std::string
line(const std::string &text, std::size_t n)
{
    std::istringstream is(text);
    std::string current;
    for (std::size_t i = 0; i <= n; ++i)
        if (!std::getline(is, current))
            return "";
    return current;
}

std::size_t
count_lines(const std::string &text)
{
    std::size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    return lines;
}

SweepReport
tiny_report()
{
    SweepGrid grid;
    grid.models = {"mlp"};
    grid.batches = {16, 32};
    grid.allocators = {runtime::AllocatorKind::kCaching};
    return run_sweep(grid);
}

TEST(SweepExport, CsvSchemaIsStable)
{
    const auto csv = sweep_csv_string(tiny_report());
    EXPECT_EQ(line(csv, 0),
              "model,batch,allocator,device,iterations,status,error,"
              "peak_total_bytes,peak_input_bytes,peak_parameter_bytes,"
              "peak_intermediate_bytes,peak_reserved_bytes,"
              "device_fragmentation,iteration_time_ns,end_time_ns,"
              "alloc_count,cache_hit_count,device_alloc_count,"
              "event_count,ati_count,ati_median_us,ati_p90_us,"
              "ati_max_us,swap_decisions,swap_peak_reduction_bytes,"
              "swap_total_bytes,swap_measured_peak_reduction_bytes,"
              "swap_predicted_stall_ns,swap_measured_stall_ns,"
              "swap_link_busy_fraction,relief_strategy,"
              "relief_peak_reduction_bytes,relief_overhead_ns");
    EXPECT_EQ(count_lines(csv), 3u);  // header + 2 scenarios
    EXPECT_EQ(line(csv, 1).substr(0, 24), "mlp,16,caching,titan-x,5");
}

TEST(SweepExport, CsvEscapesReservedCharacters)
{
    SweepReport report;
    ScenarioResult r;
    r.scenario.model = "mlp";
    r.status = ScenarioStatus::kError;
    r.error = "bad, \"worse\"\nsecond line";
    report.results.push_back(r);
    const auto csv = sweep_csv_string(report);
    // Field quoted, quotes doubled, and only the first line kept.
    EXPECT_NE(line(csv, 1).find("\"bad, \"\"worse\"\"\""),
              std::string::npos);
    EXPECT_EQ(count_lines(csv), 2u);
}

TEST(SweepExport, JsonIsBalancedAndCarriesSummary)
{
    const auto report = tiny_report();
    const auto json = sweep_json_string(report);
    std::size_t braces = 0, brackets = 0;
    for (char c : json) {
        if (c == '{') ++braces;
        if (c == '}') --braces;
        if (c == '[') ++brackets;
        if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0u);
    EXPECT_EQ(brackets, 0u);
    EXPECT_NE(json.find("\"scenarios\": ["), std::string::npos);
    EXPECT_NE(json.find("\"summary\": {\"scenarios\": 2, "
                        "\"succeeded\": 2, \"oom\": 0, "
                        "\"failed\": 0}"),
              std::string::npos);
    EXPECT_NE(json.find("\"model\": \"mlp\""), std::string::npos);
    // The measured-vs-predicted swap columns ride along per row.
    EXPECT_NE(json.find("\"swap_measured_peak_reduction_bytes\""),
              std::string::npos);
    EXPECT_NE(json.find("\"swap_measured_stall_ns\""),
              std::string::npos);
    EXPECT_NE(json.find("\"swap_link_busy_fraction\""),
              std::string::npos);
    // The unified-relief winner columns ride along too.
    EXPECT_NE(json.find("\"relief_strategy\""), std::string::npos);
    EXPECT_NE(json.find("\"relief_peak_reduction_bytes\""),
              std::string::npos);
    EXPECT_NE(json.find("\"relief_overhead_ns\""),
              std::string::npos);
}

TEST(SweepExport, JsonEscapesErrorStrings)
{
    SweepReport report;
    ScenarioResult r;
    r.scenario.model = "mlp";
    r.status = ScenarioStatus::kError;
    r.error = "path \"x\\y\"";
    report.results.push_back(r);
    const auto json = sweep_json_string(report);
    EXPECT_NE(json.find("\"error\": \"path \\\"x\\\\y\\\"\""),
              std::string::npos);
}

TEST(SweepExport, RepeatedExportIsByteIdentical)
{
    const auto report = tiny_report();
    EXPECT_EQ(sweep_csv_string(report), sweep_csv_string(report));
    EXPECT_EQ(sweep_json_string(report), sweep_json_string(report));
    // And a re-run of the same grid reproduces the same bytes.
    EXPECT_EQ(sweep_csv_string(report),
              sweep_csv_string(tiny_report()));
}

TEST(SweepExport, TableHasOneRowPerScenario)
{
    const auto report = tiny_report();
    std::ostringstream os;
    write_sweep_table(report, os);
    // header + 2 scenarios + summary line
    EXPECT_EQ(count_lines(os.str()), 4u);
    EXPECT_NE(os.str().find("2 scenarios: 2 ok, 0 oom, 0 failed"),
              std::string::npos);
}

TEST(SweepExport, FileWritersRejectBadPaths)
{
    const auto report = tiny_report();
    EXPECT_THROW(
        write_sweep_csv_file(report, "/nonexistent-dir/out.csv"),
        Error);
    EXPECT_THROW(
        write_sweep_json_file(report, "/nonexistent-dir/out.json"),
        Error);
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint
