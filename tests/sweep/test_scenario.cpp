/**
 * @file
 * Scenario grid expansion, CLI list parsing, and the model registry:
 * the declarative layer of the sweep subsystem.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/check.h"
#include "nn/model_registry.h"
#include "sweep/scenario.h"

namespace pinpoint {
namespace sweep {
namespace {

TEST(ModelRegistry, CoversTheZooPlusTestVariants)
{
    const auto names = nn::model_names();
    EXPECT_GE(names.size(), 15u);
    for (const char *expected :
         {"mlp", "alexnet", "alexnet-cifar", "vgg16", "vgg16-bn",
          "resnet18", "resnet34", "resnet50", "resnet101", "resnet152",
          "inception", "mobilenet", "squeezenet", "transformer",
          "transformer-tiny"}) {
        EXPECT_TRUE(nn::has_model(expected)) << expected;
    }
}

TEST(ModelRegistry, DefaultZooExcludesTestVariants)
{
    const auto zoo = nn::default_zoo_names();
    EXPECT_GE(zoo.size(), 8u);
    EXPECT_EQ(std::count(zoo.begin(), zoo.end(), "transformer-tiny"),
              0);
    EXPECT_EQ(std::count(zoo.begin(), zoo.end(), "resnet50"), 1);
}

TEST(ModelRegistry, BuildsWorkingModels)
{
    const nn::Model m = nn::build_model("mlp");
    EXPECT_EQ(m.name, "mlp");
    EXPECT_GT(m.graph.size(), 0u);
}

TEST(ModelRegistry, UnknownModelThrows)
{
    EXPECT_THROW(nn::build_model("lenet"), Error);
    EXPECT_FALSE(nn::has_model("lenet"));
}

TEST(Scenario, IdIsStable)
{
    Scenario s;
    s.model = "resnet50";
    s.batch = 32;
    s.allocator = runtime::AllocatorKind::kCaching;
    s.device = "titan-x";
    EXPECT_EQ(s.id(), "resnet50/b32/caching/titan-x");
}

TEST(Scenario, SessionConfigPinsEveryAxis)
{
    Scenario s;
    s.model = "mlp";
    s.batch = 64;
    s.allocator = runtime::AllocatorKind::kBuddy;
    s.device = "a100";
    s.iterations = 3;
    const runtime::SessionConfig config = s.session_config();
    EXPECT_EQ(config.batch, 64);
    EXPECT_EQ(config.iterations, 3);
    EXPECT_EQ(config.allocator, runtime::AllocatorKind::kBuddy);
    EXPECT_EQ(config.device.name,
              sim::DeviceSpec::a100_40gb().name);
}

TEST(ExpandGrid, DefaultsToFullZooGrid)
{
    const auto scenarios = expand_grid(SweepGrid{});
    const auto zoo = nn::default_zoo_names();
    // models × {16,32,64} × {caching,direct,buddy} × {titan-x}
    EXPECT_EQ(scenarios.size(), zoo.size() * 3 * 3);
}

TEST(ExpandGrid, CanonicalOrderModelsOutermost)
{
    SweepGrid grid;
    grid.models = {"mlp", "resnet18"};
    grid.batches = {8, 16};
    grid.allocators = {runtime::AllocatorKind::kCaching,
                       runtime::AllocatorKind::kDirect};
    grid.device_presets = {"titan-x"};
    const auto scenarios = expand_grid(grid);
    ASSERT_EQ(scenarios.size(), 8u);
    EXPECT_EQ(scenarios[0].id(), "mlp/b8/caching/titan-x");
    EXPECT_EQ(scenarios[1].id(), "mlp/b8/direct/titan-x");
    EXPECT_EQ(scenarios[2].id(), "mlp/b16/caching/titan-x");
    EXPECT_EQ(scenarios[4].id(), "resnet18/b8/caching/titan-x");
    EXPECT_EQ(scenarios[7].id(), "resnet18/b16/direct/titan-x");
}

TEST(ExpandGrid, ValidatesEveryAxis)
{
    SweepGrid bad_model;
    bad_model.models = {"mlp", "nope"};
    EXPECT_THROW(expand_grid(bad_model), Error);

    SweepGrid bad_device;
    bad_device.device_presets = {"h100"};
    EXPECT_THROW(expand_grid(bad_device), Error);

    SweepGrid bad_batch;
    bad_batch.batches = {16, 0};
    EXPECT_THROW(expand_grid(bad_batch), Error);

    SweepGrid bad_iterations;
    bad_iterations.iterations = 0;
    EXPECT_THROW(expand_grid(bad_iterations), Error);

    SweepGrid bad_count;
    bad_count.device_counts = {2, 0};
    EXPECT_THROW(expand_grid(bad_count), Error);

    SweepGrid bad_topology;
    bad_topology.topologies = {"infiniband"};
    EXPECT_THROW(expand_grid(bad_topology), Error);
}

TEST(ExpandGrid, DeviceCountAndTopologyAxesAreInnermost)
{
    SweepGrid grid;
    grid.models = {"mlp"};
    grid.batches = {8};
    grid.allocators = {runtime::AllocatorKind::kCaching};
    grid.device_counts = {1, 2};
    grid.topologies = {"pcie", "nvlink"};
    const auto scenarios = expand_grid(grid);
    ASSERT_EQ(scenarios.size(), 4u);
    // devices=1 scenarios keep the pre-topology id format no
    // matter which topology the grid carries.
    EXPECT_EQ(scenarios[0].id(), "mlp/b8/caching/titan-x");
    EXPECT_EQ(scenarios[1].id(), "mlp/b8/caching/titan-x");
    EXPECT_EQ(scenarios[2].id(),
              "mlp/b8/caching/titan-x/dp2/pcie");
    EXPECT_EQ(scenarios[3].id(),
              "mlp/b8/caching/titan-x/dp2/nvlink");
    EXPECT_EQ(scenarios[2].devices, 2);
    EXPECT_EQ(scenarios[3].topology, "nvlink");
}

TEST(Parsing, SplitListDropsEmptyFields)
{
    EXPECT_EQ(split_list(""), std::vector<std::string>{});
    EXPECT_EQ(split_list("a"), std::vector<std::string>{"a"});
    EXPECT_EQ(split_list("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split_list(",a,,b,"),
              (std::vector<std::string>{"a", "b"}));
}

TEST(Parsing, ParseBatches)
{
    EXPECT_EQ(parse_batches("16,32"),
              (std::vector<std::int64_t>{16, 32}));
    EXPECT_TRUE(parse_batches("").empty());
    EXPECT_THROW(parse_batches("16,huge"), Error);
    // Partial numbers must be an error, never a silent truncation
    // (std::stoll would have accepted "12abc" as 12).
    EXPECT_THROW(parse_batches("12abc"), Error);
}

TEST(Parsing, ParseDeviceCounts)
{
    EXPECT_EQ(parse_device_counts("1,2,4"),
              (std::vector<int>{1, 2, 4}));
    EXPECT_TRUE(parse_device_counts("").empty());
    EXPECT_THROW(parse_device_counts("0"), Error);
    EXPECT_THROW(parse_device_counts("two"), Error);
    // Partial numbers must be an error, never a silent truncation.
    EXPECT_THROW(parse_device_counts("2x"), Error);
}

TEST(Parsing, ParseAllocators)
{
    const auto kinds = parse_allocators("caching,buddy");
    ASSERT_EQ(kinds.size(), 2u);
    EXPECT_EQ(kinds[0], runtime::AllocatorKind::kCaching);
    EXPECT_EQ(kinds[1], runtime::AllocatorKind::kBuddy);
    EXPECT_THROW(parse_allocators("slab"), Error);
}

TEST(Parsing, AllocatorKindNamesRoundTrip)
{
    for (int i = 0; i < runtime::kNumAllocatorKinds; ++i) {
        const auto kind = static_cast<runtime::AllocatorKind>(i);
        EXPECT_EQ(runtime::allocator_kind_from_name(
                      runtime::allocator_kind_name(kind)),
                  kind);
    }
}

TEST(Parsing, DeviceSpecByName)
{
    EXPECT_EQ(sim::device_spec_by_name("titan-x").name,
              sim::DeviceSpec::titan_x_pascal().name);
    EXPECT_EQ(sim::device_spec_by_name("tiny").name,
              sim::DeviceSpec::tiny_test_device().name);
    EXPECT_THROW(sim::device_spec_by_name("h100"), Error);
    EXPECT_EQ(sim::device_spec_names().size(), 3u);
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint
