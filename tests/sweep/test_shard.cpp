/**
 * @file
 * Sharded, resumable sweeps: deterministic grid partitioning,
 * spill-file round trips, crash resume with a torn trailing
 * record, and grid-order merges byte-identical to a single run.
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "core/check.h"
#include "sweep/driver.h"
#include "sweep/export.h"
#include "sweep/shard.h"

namespace pinpoint {
namespace sweep {
namespace {

/** Fresh per-test spill directory under the gtest temp root. */
std::string
fresh_dir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "/pinpoint_spill_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<Scenario>
tiny_grid()
{
    SweepGrid grid;
    grid.models = {"mlp", "alexnet-cifar"};
    grid.batches = {16, 32};
    grid.iterations = 3;
    return expand_grid(grid);
}

/** Runs one shard of @p scenarios, spilling into @p dir. */
void
run_shard(const std::vector<Scenario> &scenarios,
          const std::string &dir, int shard, int of)
{
    SpillWriter writer(dir, shard, of, scenarios, true);
    std::vector<std::size_t> todo;
    for (std::size_t index :
         shard_indices(scenarios.size(), shard, of))
        if (writer.completed().count(index) == 0)
            todo.push_back(index);
    SweepOptions opts;
    opts.jobs = 2;
    run_sweep_subset(scenarios, todo, opts,
                     [&writer](std::size_t index,
                               const ScenarioResult &r) {
                         writer.append(index, r);
                     });
}

/** Truncates the file at @p path by @p bytes. */
void
chop(const std::string &path, std::size_t bytes)
{
    std::ifstream is(path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    is.close();
    ASSERT_GT(text.size(), bytes);
    std::ofstream os(path);
    os << text.substr(0, text.size() - bytes);
}

TEST(ShardIndices, PartitionIsExactAndDisjoint)
{
    std::set<std::size_t> seen;
    for (int shard = 0; shard < 3; ++shard) {
        for (std::size_t index : shard_indices(10, shard, 3)) {
            EXPECT_EQ(index % 3, static_cast<std::size_t>(shard));
            EXPECT_TRUE(seen.insert(index).second) << index;
        }
    }
    EXPECT_EQ(seen.size(), 10u);

    EXPECT_EQ(shard_indices(3, 0, 8).size(), 1u);
    EXPECT_THROW(shard_indices(10, 3, 3), UsageError);
    EXPECT_THROW(shard_indices(10, -1, 3), UsageError);
    EXPECT_THROW(shard_indices(10, 0, 0), UsageError);
}

TEST(SpillFile, WriterRoundTripsRowsThroughReader)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("roundtrip");
    run_shard(scenarios, dir, 1, 2);

    const SpillFile file = read_spill(spill_path(dir, 1, 2));
    EXPECT_EQ(file.shard, 1);
    EXPECT_EQ(file.of, 2);
    EXPECT_EQ(file.total, scenarios.size());
    EXPECT_EQ(file.salt, result_schema_salt());
    EXPECT_FALSE(file.truncated);
    EXPECT_EQ(file.rows.size(),
              shard_indices(scenarios.size(), 1, 2).size());
    for (const auto &row : file.rows)
        EXPECT_EQ(row.second.scenario.id(),
                  scenarios[row.first].id());
}

TEST(SpillFile, ResumeSkipsCompletedRows)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("resume");
    run_shard(scenarios, dir, 0, 2);

    SpillWriter writer(dir, 0, 2, scenarios, true);
    EXPECT_EQ(writer.completed().size(),
              shard_indices(scenarios.size(), 0, 2).size());
}

TEST(SpillFile, TornTrailingRecordIsDetectedAndDropped)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("torn");
    run_shard(scenarios, dir, 0, 2);
    const std::string path = spill_path(dir, 0, 2);
    const std::size_t complete_rows =
        shard_indices(scenarios.size(), 0, 2).size();

    // Kill the writer mid-record: the last row loses its tail.
    chop(path, 40);
    const SpillFile torn = read_spill(path);
    EXPECT_TRUE(torn.truncated);
    EXPECT_EQ(torn.rows.size(), complete_rows - 1);

    // Merging a torn shard is refused with an actionable message.
    run_shard(scenarios, dir, 1, 2);
    try {
        merge_spills(dir);
        FAIL() << "merge_spills accepted a torn spill file";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("torn"),
                  std::string::npos)
            << e.what();
    }

    // Resume drops the torn tail, re-runs only that scenario, and
    // leaves a clean file.
    run_shard(scenarios, dir, 0, 2);
    const SpillFile resumed = read_spill(path);
    EXPECT_FALSE(resumed.truncated);
    EXPECT_EQ(resumed.rows.size(), complete_rows);
}

TEST(SpillFile, WriterRejectsADifferentGrid)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("gridcheck");
    run_shard(scenarios, dir, 0, 2);

    SweepGrid other;
    other.models = {"mlp"};
    other.batches = {64};
    EXPECT_THROW(
        SpillWriter(dir, 0, 2, expand_grid(other), true), Error);
    // Same scenarios, different planner toggle: also a different
    // sweep.
    EXPECT_THROW(SpillWriter(dir, 0, 2, scenarios, false), Error);
}

TEST(SpillFile, AppendRejectsForeignIndices)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("foreign");
    SpillWriter writer(dir, 0, 2, scenarios, true);
    EXPECT_THROW(writer.append(1, ScenarioResult{}), Error);
    EXPECT_THROW(writer.append(scenarios.size(), ScenarioResult{}),
                 Error);
}

TEST(MergeSpills, ByteIdenticalToSingleProcessRun)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("merge");
    for (int shard = 0; shard < 3; ++shard)
        run_shard(scenarios, dir, shard, 3);
    const SweepReport merged = merge_spills(dir);

    SweepOptions opts;
    opts.jobs = 1;
    const SweepReport single = run_sweep(scenarios, opts);
    EXPECT_EQ(sweep_csv_string(merged), sweep_csv_string(single));
    EXPECT_EQ(sweep_json_string(merged),
              sweep_json_string(single));
    EXPECT_EQ(merged.succeeded, single.succeeded);
    EXPECT_EQ(merged.oom, single.oom);
    EXPECT_EQ(merged.failed, single.failed);
}

TEST(MergeSpills, RefusesMissingShards)
{
    const auto scenarios = tiny_grid();
    const std::string dir = fresh_dir("missing");
    run_shard(scenarios, dir, 0, 3);
    run_shard(scenarios, dir, 2, 3);
    try {
        merge_spills(dir);
        FAIL() << "merge_spills accepted a missing shard";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("missing"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(merge_spills(fresh_dir("empty")), Error);
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint