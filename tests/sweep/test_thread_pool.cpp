/**
 * @file
 * ThreadPool: every task runs exactly once, wait() means quiescent,
 * and misuse is rejected — the properties the sweep driver's
 * determinism proof rests on.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/check.h"
#include "sweep/thread_pool.h"

namespace pinpoint {
namespace sweep {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    {
        ThreadPool pool(4);
        for (int i = 0; i < kTasks; ++i)
            pool.submit([&runs, i] { runs[i].fetch_add(1); });
        pool.wait();
        for (int i = 0; i < kTasks; ++i)
            EXPECT_EQ(runs[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPool, WaitBlocksUntilAllTasksFinish)
{
    std::atomic<int> done{0};
    ThreadPool pool(3);
    for (int i = 0; i < 12; ++i)
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            done.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(done.load(), 12);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();  // nothing submitted: must not deadlock
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done] { done.fetch_add(1); });
        // No wait(): destruction itself must run everything.
    }
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks)
{
    std::atomic<int> done{0};
    ThreadPool pool(2);
    pool.submit([&] {
        done.fetch_add(1);
        pool.submit([&done] { done.fetch_add(1); });
    });
    // wait() covers transitively-submitted work too: the queue must
    // be empty AND no task in flight.
    while (done.load() < 2)
        std::this_thread::yield();
    pool.wait();
    EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, ReportsThreadCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3);
}

TEST(ThreadPool, RejectsNonPositiveThreadCount)
{
    EXPECT_THROW(ThreadPool(0), Error);
    EXPECT_THROW(ThreadPool(-4), Error);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::default_threads(), 1);
}

TEST(ThreadPool, ManyWorkersFewTasks)
{
    std::atomic<int> done{0};
    ThreadPool pool(8);
    pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint
