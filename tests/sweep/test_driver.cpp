/**
 * @file
 * Sweep driver: deterministic results independent of worker count,
 * aggregation math consistent with a direct runtime::Session run,
 * and graceful per-scenario failure capture.
 */
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "analysis/ati.h"
#include "analysis/stats.h"
#include "core/check.h"
#include "nn/model_registry.h"
#include "sweep/driver.h"
#include "sweep/export.h"

namespace pinpoint {
namespace sweep {
namespace {

/** Small but heterogeneous grid used by the determinism tests. */
std::vector<Scenario>
small_grid()
{
    SweepGrid grid;
    grid.models = {"mlp", "alexnet-cifar", "transformer-tiny"};
    grid.batches = {16, 32};
    grid.allocators = {runtime::AllocatorKind::kCaching,
                       runtime::AllocatorKind::kDirect};
    grid.iterations = 4;
    return expand_grid(grid);
}

TEST(SweepDriver, SerialAndParallelAreByteIdentical)
{
    const auto scenarios = small_grid();

    SweepOptions serial;
    serial.jobs = 1;
    const auto report1 = run_sweep(scenarios, serial);

    SweepOptions parallel;
    parallel.jobs = 8;
    const auto report8 = run_sweep(scenarios, parallel);

    EXPECT_EQ(sweep_csv_string(report1), sweep_csv_string(report8));
    EXPECT_EQ(sweep_json_string(report1), sweep_json_string(report8));
}

TEST(SweepDriver, ResultsStayInGridOrderUnderParallelism)
{
    const auto scenarios = small_grid();
    SweepOptions options;
    options.jobs = 4;
    const auto report = run_sweep(scenarios, options);
    ASSERT_EQ(report.results.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        EXPECT_EQ(report.results[i].scenario.id(), scenarios[i].id());
}

TEST(SweepDriver, AggregationMatchesDirectSession)
{
    Scenario s;
    s.model = "alexnet-cifar";
    s.batch = 32;
    s.iterations = 5;
    const auto result = run_scenario(s);
    ASSERT_EQ(result.status, ScenarioStatus::kOk) << result.error;

    const auto direct = runtime::run_training(
        nn::build_model(s.model), s.session_config());

    EXPECT_EQ(result.peak_total_bytes, direct.usage.peak_total);
    EXPECT_EQ(result.peak_input_bytes + result.peak_parameter_bytes +
                  result.peak_intermediate_bytes,
              direct.usage.peak_total);
    EXPECT_EQ(result.peak_reserved_bytes, direct.peak_reserved_bytes);
    EXPECT_EQ(result.iteration_time, direct.iteration_time);
    EXPECT_EQ(result.end_time, direct.end_time);
    EXPECT_EQ(result.alloc_count, direct.alloc_stats.alloc_count);
    EXPECT_EQ(result.event_count, direct.trace.size());

    const auto atis = analysis::compute_atis(direct.view());
    EXPECT_EQ(result.ati_count, atis.size());
    const auto stats =
        analysis::summarize(analysis::ati_microseconds(atis));
    EXPECT_DOUBLE_EQ(result.ati_median_us, stats.median);
    EXPECT_DOUBLE_EQ(result.ati_p90_us, stats.p90);
}

TEST(SweepDriver, OomIsCapturedPerScenario)
{
    // vgg16 cannot train at batch 64 on a 256 MB device.
    Scenario s;
    s.model = "vgg16";
    s.batch = 64;
    s.device = "tiny";
    const auto result = run_scenario(s);
    EXPECT_EQ(result.status, ScenarioStatus::kOom);
    EXPECT_FALSE(result.error.empty());
    EXPECT_EQ(result.peak_total_bytes, 0u);
}

TEST(SweepDriver, FailuresAreCountedNotThrown)
{
    SweepGrid grid;
    grid.models = {"mlp", "vgg16"};
    grid.batches = {64};
    grid.allocators = {runtime::AllocatorKind::kCaching};
    grid.device_presets = {"tiny"};
    SweepOptions options;
    options.jobs = 2;
    const auto report = run_sweep(grid, options);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.succeeded, 1u);
    EXPECT_EQ(report.oom, 1u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.results[0].status, ScenarioStatus::kOk);
    EXPECT_EQ(report.results[1].status, ScenarioStatus::kOom);
}

TEST(SweepDriver, CallbackFiresOncePerScenario)
{
    const auto scenarios = small_grid();
    std::mutex mutex;
    std::multiset<std::string> seen;
    SweepOptions options;
    options.jobs = 4;
    options.on_result = [&](const ScenarioResult &r) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(r.scenario.id());
    };
    run_sweep(scenarios, options);
    EXPECT_EQ(seen.size(), scenarios.size());
    for (const auto &s : scenarios)
        EXPECT_EQ(seen.count(s.id()), 1u) << s.id();
}

TEST(SweepDriver, SwapPlanCanBeDisabled)
{
    Scenario s;
    s.model = "alexnet-cifar";
    s.batch = 32;
    const auto with_plan = run_scenario(s, true);
    const auto without = run_scenario(s, false);
    EXPECT_GT(with_plan.swap_decisions, 0u);
    EXPECT_EQ(without.swap_decisions, 0u);
    EXPECT_EQ(without.swap_peak_reduction_bytes, 0u);
    EXPECT_EQ(without.swap_measured_peak_reduction_bytes, 0u);
    EXPECT_EQ(without.swap_measured_stall_ns, 0u);
    EXPECT_EQ(without.swap_link_busy_fraction, 0.0);
    // Everything else is unchanged.
    EXPECT_EQ(with_plan.peak_total_bytes, without.peak_total_bytes);
    EXPECT_EQ(with_plan.end_time, without.end_time);
}

TEST(SweepDriver, NonPositiveJobsClampToSerial)
{
    std::vector<Scenario> one;
    Scenario s;
    s.model = "mlp";
    one.push_back(s);
    SweepOptions options;
    options.jobs = 0;
    const auto report = run_sweep(one, options);
    EXPECT_EQ(report.jobs, 1);
    EXPECT_EQ(report.succeeded, 1u);
}

TEST(SubmissionOrder, DescendingCostWithStableTies)
{
    // Same model: cost scales with batch x iterations, so the
    // order must be by that product, descending, grid order on
    // ties.
    std::vector<Scenario> scenarios(4);
    for (auto &s : scenarios)
        s.model = "mlp";
    scenarios[0].batch = 16;
    scenarios[1].batch = 64;
    scenarios[2].batch = 16;
    scenarios[2].iterations = 50;
    scenarios[3].batch = 16;

    std::vector<std::size_t> indices = {0, 1, 2, 3};
    const auto order =
        submission_order(scenarios, indices, {0, 0, 0, 0});
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 2u);  // 16 * 50 iterations
    EXPECT_EQ(order[1], 1u);  // 64 * 5
    EXPECT_EQ(order[2], 0u);  // tie with 3: grid order
    EXPECT_EQ(order[3], 3u);
}

TEST(SubmissionOrder, CachedWallTimesRefineTheEstimate)
{
    std::vector<Scenario> scenarios(4);
    for (auto &s : scenarios)
        s.model = "mlp";
    scenarios[0].batch = 16;
    scenarios[1].batch = 16;
    scenarios[2].batch = 16;
    scenarios[3].batch = 64;

    // By abstract cost alone, scenario 3 (batch 64) would go
    // first. But scenario 0 *measured* far slower than its
    // abstract twins 1 and 2, and the unhinted scenario 3 is
    // rescaled by the median hinted ratio — so the measurement
    // wins the first slot.
    const std::vector<std::size_t> indices = {0, 1, 2, 3};
    const auto order = submission_order(scenarios, indices,
                                        {800000, 1000, 1200, 0});
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 2u);
    EXPECT_EQ(order[3], 1u);
}

TEST(SweepDriver, SubsetDeliversGlobalIndicesInGridOrder)
{
    const auto scenarios = small_grid();
    const std::vector<std::size_t> indices = {1, 3, 5};

    std::mutex mutex;
    std::set<std::size_t> delivered;
    SweepOptions options;
    options.jobs = 2;
    const auto report = run_sweep_subset(
        scenarios, indices, options,
        [&](std::size_t index, const ScenarioResult &r) {
            std::lock_guard<std::mutex> lock(mutex);
            EXPECT_EQ(r.scenario.id(), scenarios[index].id());
            delivered.insert(index);
        });

    EXPECT_EQ(delivered, std::set<std::size_t>({1, 3, 5}));
    ASSERT_EQ(report.results.size(), 3u);
    for (std::size_t k = 0; k < indices.size(); ++k)
        EXPECT_EQ(report.results[k].scenario.id(),
                  scenarios[indices[k]].id());
}

TEST(SweepDriver, SinkExceptionsAbortTheSweep)
{
    const auto scenarios = small_grid();
    const std::vector<std::size_t> indices = {0, 1, 2, 3};
    for (int jobs : {1, 4}) {
        SweepOptions options;
        options.jobs = jobs;
        EXPECT_THROW(
            run_sweep_subset(scenarios, indices, options,
                             [](std::size_t,
                                const ScenarioResult &) {
                                 throw Error("sink failed");
                             }),
            Error)
            << "jobs=" << jobs;
    }
}

TEST(SweepDriver, CostOrderTogglesWithoutChangingBytes)
{
    const auto scenarios = small_grid();
    SweepOptions ordered;
    ordered.jobs = 4;
    ordered.cost_order = true;
    SweepOptions unordered;
    unordered.jobs = 4;
    unordered.cost_order = false;
    EXPECT_EQ(sweep_csv_string(run_sweep(scenarios, ordered)),
              sweep_csv_string(run_sweep(scenarios, unordered)));
}

TEST(SweepDriver, ProgressCallbackCountsToTotal)
{
    const auto scenarios = small_grid();
    SweepOptions options;
    options.jobs = 4;
    std::mutex mutex;
    std::size_t calls = 0;
    std::size_t last_done = 0;
    options.on_progress = [&](const SweepProgress &p) {
        std::lock_guard<std::mutex> lock(mutex);
        ++calls;
        EXPECT_EQ(p.total, scenarios.size());
        last_done = p.done;
    };
    run_sweep(scenarios, options);
    EXPECT_EQ(calls, scenarios.size());
    EXPECT_EQ(last_done, scenarios.size());
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint
