/**
 * @file
 * Result cache: content-keyed hits, schema-salt invalidation,
 * corrupt entries degrading to recomputes, concurrent writers on
 * one directory, and the driver's hit/miss accounting.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "sweep/cache.h"
#include "sweep/driver.h"
#include "sweep/export.h"
#include "sweep/scenario.h"

namespace pinpoint {
namespace sweep {
namespace {

/** Fresh per-test cache directory under the gtest temp root. */
std::string
fresh_dir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "/pinpoint_cache_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

Scenario
tiny_scenario()
{
    Scenario s;
    s.model = "mlp";
    s.batch = 16;
    s.iterations = 3;
    return s;
}

TEST(ResultCache, MissThenHitRoundTripsTheResult)
{
    const ResultCache cache(fresh_dir("roundtrip"));
    const Scenario s = tiny_scenario();

    ScenarioResult out;
    std::uint64_t hint = 0;
    EXPECT_EQ(cache.load(s, true, out, hint), CacheLookup::kMiss);

    const ScenarioResult computed = run_scenario(s, true);
    cache.store(s, true, computed, 12345);

    EXPECT_EQ(cache.load(s, true, out, hint), CacheLookup::kHit);
    EXPECT_EQ(hint, 12345u);
    EXPECT_EQ(encode_result_record(out),
              encode_result_record(computed));
}

TEST(ResultCache, KeyCoversRunLengthKnobsAndSwapToggle)
{
    const Scenario base = tiny_scenario();
    Scenario more_iterations = base;
    more_iterations.iterations = base.iterations + 1;
    Scenario more_requests = base;
    more_requests.requests = base.requests + 1;

    // id() drops run-length knobs by design; the cache key must
    // not, or a --iterations 50 sweep would serve 5-iteration rows.
    EXPECT_EQ(base.id(), more_iterations.id());
    EXPECT_NE(ResultCache::key(base, true),
              ResultCache::key(more_iterations, true));
    EXPECT_NE(ResultCache::key(base, true),
              ResultCache::key(more_requests, true));
    EXPECT_NE(ResultCache::key(base, true),
              ResultCache::key(base, false));
}

TEST(ResultCache, SwapToggleSeparatesEntries)
{
    const ResultCache cache(fresh_dir("toggle"));
    const Scenario s = tiny_scenario();
    cache.store(s, true, run_scenario(s, true), 1);

    ScenarioResult out;
    std::uint64_t hint = 0;
    EXPECT_EQ(cache.load(s, false, out, hint), CacheLookup::kMiss);
    EXPECT_EQ(cache.load(s, true, out, hint), CacheLookup::kHit);
}

TEST(ResultCache, StaleSaltInvalidatesButKeepsWallHint)
{
    const ResultCache cache(fresh_dir("stale"));
    const Scenario s = tiny_scenario();
    cache.store(s, true, run_scenario(s, true), 777);

    // Rewrite the entry with a different salt, as a build with a
    // changed record layout would have written it.
    const std::string path =
        cache.path_for_key(ResultCache::key(s, true));
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    is.close();
    lines[1] = "salt=0000000000000000";
    std::ofstream os(path);
    for (const auto &l : lines)
        os << l << "\n";
    os.close();

    ScenarioResult out;
    std::uint64_t hint = 0;
    EXPECT_EQ(cache.load(s, true, out, hint), CacheLookup::kStale);
    EXPECT_EQ(hint, 777u);
}

TEST(ResultCache, CorruptEntriesAreMissesNotCrashes)
{
    const ResultCache cache(fresh_dir("corrupt"));
    const Scenario s = tiny_scenario();
    cache.store(s, true, run_scenario(s, true), 1);
    const std::string path =
        cache.path_for_key(ResultCache::key(s, true));

    ScenarioResult out;
    std::uint64_t hint = 0;
    for (const char *garbage :
         {"", "random bytes\n", "pinpoint-sweep-cache v1\n",
          "pinpoint-sweep-cache v1\nsalt=zz\nwall_ns=x\nkey=k\n"}) {
        std::ofstream os(path);
        os << garbage;
        os.close();
        EXPECT_EQ(cache.load(s, true, out, hint),
                  CacheLookup::kMiss)
            << garbage;
    }

    // A truncated (half-written) entry is also just a miss.
    cache.store(s, true, run_scenario(s, true), 1);
    std::ifstream full(path);
    std::string text((std::istreambuf_iterator<char>(full)),
                     std::istreambuf_iterator<char>());
    full.close();
    std::ofstream os(path);
    os << text.substr(0, text.size() / 2);
    os.close();
    EXPECT_EQ(cache.load(s, true, out, hint), CacheLookup::kMiss);
}

TEST(ResultCache, SixteenThreadHammerOnOneDirectory)
{
    const ResultCache cache(fresh_dir("hammer"));
    const Scenario s = tiny_scenario();
    const ScenarioResult computed = run_scenario(s, true);
    const std::string expected = encode_result_record(computed);

    std::vector<std::thread> threads;
    for (int t = 0; t < 16; ++t) {
        threads.emplace_back([&cache, &s, &computed, &expected] {
            for (int i = 0; i < 25; ++i) {
                cache.store(s, true, computed,
                            static_cast<std::uint64_t>(i + 1));
                ScenarioResult out;
                std::uint64_t hint = 0;
                const CacheLookup lookup =
                    cache.load(s, true, out, hint);
                // Concurrent writers race benignly: a load sees a
                // complete entry or none, never a torn one.
                if (lookup == CacheLookup::kHit)
                    EXPECT_EQ(encode_result_record(out), expected);
                else
                    EXPECT_EQ(lookup, CacheLookup::kMiss);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    ScenarioResult out;
    std::uint64_t hint = 0;
    EXPECT_EQ(cache.load(s, true, out, hint), CacheLookup::kHit);
    EXPECT_EQ(encode_result_record(out), expected);

    // No temp files left behind.
    std::size_t leftovers = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(cache.dir()))
        if (entry.path().string().find(".tmp") != std::string::npos)
            ++leftovers;
    EXPECT_EQ(leftovers, 0u);
}

TEST(ResultCache, DriverCountsHitsAndStaysByteIdentical)
{
    SweepGrid grid;
    grid.models = {"mlp", "alexnet-cifar"};
    grid.batches = {16, 32};
    grid.iterations = 3;
    const auto scenarios = expand_grid(grid);

    const ResultCache cache(fresh_dir("driver"));
    SweepOptions opts;
    opts.jobs = 4;
    opts.cache = &cache;

    const auto cold = run_sweep(scenarios, opts);
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(cold.cache_misses, scenarios.size());

    const auto warm = run_sweep(scenarios, opts);
    EXPECT_EQ(warm.cache_hits, scenarios.size());
    EXPECT_EQ(warm.cache_misses, 0u);

    EXPECT_EQ(sweep_csv_string(warm), sweep_csv_string(cold));
    EXPECT_EQ(sweep_json_string(warm), sweep_json_string(cold));

    // A sweep without the cache option ignores the directory.
    SweepOptions plain;
    plain.jobs = 2;
    const auto uncached = run_sweep(scenarios, plain);
    EXPECT_EQ(uncached.cache_hits, 0u);
    EXPECT_EQ(uncached.cache_misses, 0u);
    EXPECT_EQ(sweep_csv_string(uncached), sweep_csv_string(cold));
}

}  // namespace
}  // namespace sweep
}  // namespace pinpoint