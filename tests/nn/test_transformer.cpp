/** @file Tests for the transformer encoder and its layer kinds. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/models.h"
#include "nn/shape_infer.h"

namespace pinpoint {
namespace nn {
namespace {

TransformerConfig
tiny()
{
    TransformerConfig cfg;
    cfg.layers = 2;
    cfg.d_model = 64;
    cfg.heads = 4;
    cfg.d_ff = 256;
    cfg.seq_len = 16;
    cfg.vocab = 1000;
    return cfg;
}

TEST(Transformer, ParamCountMatchesClosedForm)
{
    const TransformerConfig cfg = tiny();
    const Model m = transformer_encoder(cfg);
    const auto infos = infer(m.graph, m.input_shape(2));

    const std::int64_t d = cfg.d_model;
    const std::int64_t ff = cfg.d_ff;
    const std::int64_t per_layer = 4 * (d * d + d)        // q,k,v,out
                                   + (d * ff + ff)        // fc1
                                   + (ff * d + d)         // fc2
                                   + 2 * (2 * d);         // two LNs
    const std::int64_t expected = cfg.vocab * d              // embed
                                  + cfg.layers * per_layer
                                  + d * cfg.vocab + cfg.vocab;  // head
    EXPECT_EQ(total_param_count(infos), expected);
}

TEST(Transformer, BertBaseScaleParamCount)
{
    TransformerConfig cfg;  // BERT-base defaults
    const Model m = transformer_encoder(cfg);
    const auto infos = infer(m.graph, m.input_shape(1));
    // Encoder stack of BERT-base is ~85.1M; embedding + tied-size
    // LM head add ~46.9M here.
    EXPECT_EQ(total_param_count(infos), 131966778);
}

TEST(Transformer, ShapesFlowThroughAttention)
{
    const Model m = transformer_encoder(tiny());
    const auto infos = infer(m.graph, m.input_shape(4));
    // Embedding output.
    EXPECT_EQ(infos[1].out_shape, (Shape{4, 16, 64}));
    // Logits (penultimate node).
    EXPECT_EQ(infos[infos.size() - 2].out_shape,
              (Shape{4, 16, 1000}));
    // Loss is scalar.
    EXPECT_EQ(infos.back().out_shape, (Shape{1}));
}

TEST(Transformer, LinearAppliesToInnermostDim)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId e = g.add(LayerKind::kEmbedding, "e", {x},
                           EmbeddingAttrs{100, 32});
    g.add(LayerKind::kLinear, "fc", {e}, LinearAttrs{32, 48, true});
    const auto infos = infer(g, Shape{2, 10});
    EXPECT_EQ(infos.back().out_shape, (Shape{2, 10, 48}));
    // rows = 2*10: flops = 2*20*32*48.
    EXPECT_DOUBLE_EQ(infos.back().fwd_flops, 2.0 * 20 * 32 * 48);
}

TEST(Transformer, SelfAttentionValidatesInputs)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId e = g.add(LayerKind::kEmbedding, "e", {x},
                           EmbeddingAttrs{100, 32});
    const NodeId q = g.add(LayerKind::kLinear, "q", {e},
                           LinearAttrs{32, 32, true});
    const NodeId k = g.add(LayerKind::kLinear, "k", {e},
                           LinearAttrs{32, 32, true});
    // Mismatched V width.
    const NodeId v = g.add(LayerKind::kLinear, "v", {e},
                           LinearAttrs{32, 16, true});
    g.add(LayerKind::kSelfAttention, "attn", {q, k, v},
          SelfAttentionAttrs{4, 32});
    EXPECT_THROW(infer(g, Shape{2, 8}), Error);
}

TEST(Transformer, HeadsMustDivideModelDim)
{
    TransformerConfig cfg = tiny();
    cfg.heads = 5;
    EXPECT_THROW(transformer_encoder(cfg), Error);
}

TEST(Transformer, LayerNormRequiresMatchingInnerDim)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId e = g.add(LayerKind::kEmbedding, "e", {x},
                           EmbeddingAttrs{100, 32});
    g.add(LayerKind::kLayerNorm, "ln", {e}, LayerNormAttrs{64});
    EXPECT_THROW(infer(g, Shape{2, 8}), Error);
}

TEST(Transformer, FlopsDominatedByAttentionAtLongSeq)
{
    TransformerConfig short_cfg = tiny();
    TransformerConfig long_cfg = tiny();
    long_cfg.seq_len = 16 * 8;
    const auto flops = [](const TransformerConfig &cfg) {
        const Model m = transformer_encoder(cfg);
        return total_fwd_flops(infer(m.graph, m.input_shape(1)));
    };
    // Attention is quadratic in S; everything else linear. 8x the
    // sequence must grow FLOPs by more than 8x.
    EXPECT_GT(flops(long_cfg), 8.5 * flops(short_cfg));
}

}  // namespace
}  // namespace nn
}  // namespace pinpoint
