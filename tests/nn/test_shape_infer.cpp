/** @file Unit tests for per-layer shape/param/FLOP inference. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/shape_infer.h"

namespace pinpoint {
namespace nn {
namespace {

/** Tiny helper: single-op graph around an input. */
struct Single {
    Graph g;
    NodeId out;

    Single(LayerKind kind, LayerAttrs attrs)
    {
        const NodeId x = g.add_input();
        out = g.add(kind, "op", {x}, std::move(attrs));
    }
};

TEST(ShapeInfer, Conv2dOutputShape)
{
    // AlexNet conv1: 224 -> (224 + 2*2 - 11)/4 + 1 = 55.
    Single s(LayerKind::kConv2d, Conv2dAttrs{3, 64, 11, 4, 2, true});
    const auto infos = infer(s.g, Shape{32, 3, 224, 224});
    EXPECT_EQ(infos.back().out_shape, (Shape{32, 64, 55, 55}));
}

TEST(ShapeInfer, Conv2dParamsAndFlops)
{
    Single s(LayerKind::kConv2d, Conv2dAttrs{3, 64, 11, 4, 2, true});
    const auto infos = infer(s.g, Shape{1, 3, 224, 224});
    const auto &info = infos.back();
    ASSERT_EQ(info.params.size(), 2u);
    EXPECT_EQ(info.params[0].shape, (Shape{64, 3, 11, 11}));
    EXPECT_EQ(info.params[1].shape, (Shape{64}));
    // 2 * N * Cout * H' * W' * Cin * k^2.
    EXPECT_DOUBLE_EQ(info.fwd_flops,
                     2.0 * 1 * 64 * 55 * 55 * 3 * 121);
    EXPECT_DOUBLE_EQ(info.bwd_flops, 2.0 * info.fwd_flops);
}

TEST(ShapeInfer, GroupedConvSplitsChannels)
{
    Conv2dAttrs attrs{8, 16, 3, 1, 1, false};
    attrs.groups = 4;
    Single s(LayerKind::kConv2d, attrs);
    const auto infos = infer(s.g, Shape{2, 8, 10, 10});
    const auto &info = infos.back();
    EXPECT_EQ(info.params[0].shape, (Shape{16, 2, 3, 3}));
    // FLOPs scale by cin/groups.
    EXPECT_DOUBLE_EQ(info.fwd_flops,
                     2.0 * 2 * 16 * 10 * 10 * 2 * 9);
}

TEST(ShapeInfer, DepthwiseConvHasOneInputChannelPerFilter)
{
    Conv2dAttrs attrs{32, 32, 3, 1, 1, false};
    attrs.groups = 32;
    Single s(LayerKind::kConv2d, attrs);
    const auto infos = infer(s.g, Shape{1, 32, 8, 8});
    EXPECT_EQ(infos.back().params[0].shape, (Shape{32, 1, 3, 3}));
}

TEST(ShapeInfer, GroupsMustDivideChannels)
{
    Conv2dAttrs attrs{8, 16, 3, 1, 1, false};
    attrs.groups = 3;
    Single s(LayerKind::kConv2d, attrs);
    EXPECT_THROW(infer(s.g, Shape{1, 8, 8, 8}), Error);
}

TEST(ShapeInfer, Conv2dNoBias)
{
    Single s(LayerKind::kConv2d, Conv2dAttrs{3, 8, 3, 1, 1, false});
    const auto infos = infer(s.g, Shape{1, 3, 8, 8});
    EXPECT_EQ(infos.back().params.size(), 1u);
}

TEST(ShapeInfer, Conv2dChannelMismatchThrows)
{
    Single s(LayerKind::kConv2d, Conv2dAttrs{4, 8, 3, 1, 1, true});
    EXPECT_THROW(infer(s.g, Shape{1, 3, 8, 8}), Error);
}

TEST(ShapeInfer, Conv2dKernelLargerThanInputThrows)
{
    Single s(LayerKind::kConv2d, Conv2dAttrs{3, 8, 7, 1, 0, true});
    EXPECT_THROW(infer(s.g, Shape{1, 3, 5, 5}), Error);
}

TEST(ShapeInfer, LinearShapeParamsFlops)
{
    // The paper's fc0: (2, 12288).
    Single s(LayerKind::kLinear, LinearAttrs{2, 12288, true});
    const auto infos = infer(s.g, Shape{64, 2});
    const auto &info = infos.back();
    EXPECT_EQ(info.out_shape, (Shape{64, 12288}));
    ASSERT_EQ(info.params.size(), 2u);
    EXPECT_EQ(info.params[0].shape, (Shape{12288, 2}));
    EXPECT_EQ(info.params[1].shape, (Shape{12288}));
    EXPECT_DOUBLE_EQ(info.fwd_flops, 2.0 * 64 * 2 * 12288);
}

TEST(ShapeInfer, LinearRequiresRank2)
{
    Single s(LayerKind::kLinear, LinearAttrs{16, 8, true});
    EXPECT_THROW(infer(s.g, Shape{1, 16, 1, 1}), Error);
}

TEST(ShapeInfer, MaxPoolDefaultStrideEqualsKernel)
{
    Single s(LayerKind::kMaxPool2d, Pool2dAttrs{2, 0, 0});
    const auto infos = infer(s.g, Shape{4, 8, 32, 32});
    EXPECT_EQ(infos.back().out_shape, (Shape{4, 8, 16, 16}));
}

TEST(ShapeInfer, MaxPoolExplicitStrideAndPadding)
{
    // ResNet stem pool: 112 -> (112 + 2 - 3)/2 + 1 = 56.
    Single s(LayerKind::kMaxPool2d, Pool2dAttrs{3, 2, 1});
    const auto infos = infer(s.g, Shape{1, 64, 112, 112});
    EXPECT_EQ(infos.back().out_shape, (Shape{1, 64, 56, 56}));
}

TEST(ShapeInfer, AdaptivePoolProducesRequestedSize)
{
    Single s(LayerKind::kAdaptiveAvgPool2d, AdaptivePool2dAttrs{6, 6});
    const auto infos = infer(s.g, Shape{2, 256, 13, 13});
    EXPECT_EQ(infos.back().out_shape, (Shape{2, 256, 6, 6}));
}

TEST(ShapeInfer, BatchNormPreservesShapeAndHasBuffers)
{
    Single s(LayerKind::kBatchNorm2d, BatchNorm2dAttrs{64});
    const auto infos = infer(s.g, Shape{8, 64, 28, 28});
    const auto &info = infos.back();
    EXPECT_EQ(info.out_shape, (Shape{8, 64, 28, 28}));
    ASSERT_EQ(info.params.size(), 4u);
    EXPECT_TRUE(info.params[0].trainable);   // weight
    EXPECT_TRUE(info.params[1].trainable);   // bias
    EXPECT_FALSE(info.params[2].trainable);  // running_mean
    EXPECT_FALSE(info.params[3].trainable);  // running_var
}

TEST(ShapeInfer, FlattenCollapsesToRank2)
{
    Single s(LayerKind::kFlatten, NoAttrs{});
    const auto infos = infer(s.g, Shape{32, 256, 6, 6});
    EXPECT_EQ(infos.back().out_shape, (Shape{32, 256 * 36}));
}

TEST(ShapeInfer, AddRequiresMatchingShapes)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId a = g.add(LayerKind::kReLU, "a", {x});
    const NodeId b = g.add(LayerKind::kMaxPool2d, "b", {x},
                           Pool2dAttrs{2, 0, 0});
    g.add(LayerKind::kAdd, "sum", {a, b});
    EXPECT_THROW(infer(g, Shape{1, 4, 8, 8}), Error);
}

TEST(ShapeInfer, ConcatSumsChannels)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId a = g.add(LayerKind::kConv2d, "a", {x},
                           Conv2dAttrs{8, 16, 1, 1, 0, true});
    const NodeId b = g.add(LayerKind::kConv2d, "b", {x},
                           Conv2dAttrs{8, 24, 1, 1, 0, true});
    g.add(LayerKind::kConcat, "cat", {a, b}, ConcatAttrs{1});
    const auto infos = infer(g, Shape{2, 8, 14, 14});
    EXPECT_EQ(infos.back().out_shape, (Shape{2, 40, 14, 14}));
}

TEST(ShapeInfer, ConcatRejectsMismatchedSpatialDims)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId a = g.add(LayerKind::kReLU, "a", {x});
    const NodeId b = g.add(LayerKind::kMaxPool2d, "b", {x},
                           Pool2dAttrs{2, 0, 0});
    g.add(LayerKind::kConcat, "cat", {a, b}, ConcatAttrs{1});
    EXPECT_THROW(infer(g, Shape{1, 4, 8, 8}), Error);
}

TEST(ShapeInfer, SoftmaxCrossEntropyYieldsScalarLoss)
{
    Single s(LayerKind::kSoftmaxCrossEntropy, NoAttrs{});
    const auto infos = infer(s.g, Shape{64, 10});
    EXPECT_EQ(infos.back().out_shape, (Shape{1}));
}

TEST(ShapeInfer, TotalsAggregate)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId fc = g.add(LayerKind::kLinear, "fc", {x},
                            LinearAttrs{4, 3, true});
    g.add(LayerKind::kSoftmaxCrossEntropy, "loss", {fc});
    const auto infos = infer(g, Shape{2, 4});
    EXPECT_EQ(total_param_count(infos), 4 * 3 + 3);
    EXPECT_EQ(total_param_bytes(infos), (4 * 3 + 3) * 4);
    EXPECT_GT(total_fwd_flops(infos), 0.0);
}

TEST(ShapeInfer, RejectsZeroBatch)
{
    Single s(LayerKind::kReLU, NoAttrs{});
    EXPECT_THROW(infer(s.g, Shape{0, 4}), Error);
}

}  // namespace
}  // namespace nn
}  // namespace pinpoint
