/** @file Unit tests for the model graph container. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/graph.h"

namespace pinpoint {
namespace nn {
namespace {

TEST(Graph, InputMustBeUniqueAndFirstClass)
{
    Graph g;
    const NodeId x = g.add_input("x");
    EXPECT_EQ(g.input(), x);
    EXPECT_THROW(g.add_input("y"), Error);
}

TEST(Graph, InputAccessorThrowsWhenAbsent)
{
    Graph g;
    EXPECT_THROW(g.input(), Error);
    EXPECT_THROW(g.output(), Error);
}

TEST(Graph, NodesAreTopologicallyOrderedByConstruction)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId a = g.add(LayerKind::kReLU, "a", {x});
    const NodeId b = g.add(LayerKind::kReLU, "b", {a});
    EXPECT_LT(x, a);
    EXPECT_LT(a, b);
    EXPECT_EQ(g.output(), b);
}

TEST(Graph, ForwardReferencesRejected)
{
    Graph g;
    g.add_input();
    EXPECT_THROW(g.add(LayerKind::kReLU, "bad", {5}), Error);
    EXPECT_THROW(g.add(LayerKind::kReLU, "self", {1}), Error)
        << "a node cannot consume itself";
}

TEST(Graph, EmptyInputListRejected)
{
    Graph g;
    g.add_input();
    EXPECT_THROW(g.add(LayerKind::kReLU, "norphan", {}), Error);
}

TEST(Graph, ConsumersFindsFanOut)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId a = g.add(LayerKind::kReLU, "a", {x});
    const NodeId b = g.add(LayerKind::kReLU, "b", {a});
    const NodeId c = g.add(LayerKind::kReLU, "c", {a});
    const NodeId d = g.add(LayerKind::kAdd, "d", {b, c});
    const auto consumers = g.consumers(a);
    ASSERT_EQ(consumers.size(), 2u);
    EXPECT_EQ(consumers[0], b);
    EXPECT_EQ(consumers[1], c);
    EXPECT_TRUE(g.consumers(d).empty());
}

TEST(Graph, ConsumersCountsEachConsumerOnce)
{
    Graph g;
    const NodeId x = g.add_input();
    const NodeId a = g.add(LayerKind::kReLU, "a", {x});
    const NodeId d = g.add(LayerKind::kAdd, "d", {a, a});
    const auto consumers = g.consumers(a);
    ASSERT_EQ(consumers.size(), 1u);
    EXPECT_EQ(consumers[0], d);
}

TEST(Graph, NodeLookupValidatesRange)
{
    Graph g;
    g.add_input();
    EXPECT_EQ(g.node(0).kind, LayerKind::kInput);
    EXPECT_THROW(g.node(1), Error);
    EXPECT_THROW(g.node(-1), Error);
}

TEST(LayerKindNames, AllKindsNamed)
{
    EXPECT_STREQ(layer_kind_name(LayerKind::kConv2d), "conv2d");
    EXPECT_STREQ(layer_kind_name(LayerKind::kSoftmaxCrossEntropy),
                 "softmax_ce");
    EXPECT_STREQ(layer_kind_name(LayerKind::kAdaptiveAvgPool2d),
                 "adaptiveavgpool2d");
}

}  // namespace
}  // namespace nn
}  // namespace pinpoint
