/**
 * @file
 * Model zoo tests: trainable parameter counts are checked against the
 * published torchvision numbers where our architecture matches
 * torchvision exactly (AlexNet/ImageNet, VGG-16, the ResNet family),
 * and against structural invariants elsewhere.
 */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/models.h"
#include "nn/shape_infer.h"

namespace pinpoint {
namespace nn {
namespace {

std::int64_t
param_count(const Model &m, std::int64_t batch = 2)
{
    return total_param_count(infer(m.graph, m.input_shape(batch)));
}

TEST(Models, MlpMatchesPaperFig1)
{
    const Model m = mlp();
    // W0 (2,12288), b0 (12288), W1 (12288,2), b1 (2).
    EXPECT_EQ(param_count(m), 2 * 12288 + 12288 + 12288 * 2 + 2);
    const auto infos = infer(m.graph, m.input_shape(64));
    // x -> fc0 -> relu -> fc1 -> loss.
    ASSERT_EQ(m.graph.size(), 5u);
    EXPECT_EQ(infos[1].out_shape, (Shape{64, 12288}));
    EXPECT_EQ(infos[3].out_shape, (Shape{64, 2}));
}

TEST(Models, MlpCustomDimensions)
{
    const Model m = mlp(10, 100, 7);
    EXPECT_EQ(param_count(m), 10 * 100 + 100 + 100 * 7 + 7);
    EXPECT_THROW(mlp(0, 1, 1), Error);
}

TEST(Models, AlexNetImagenetMatchesTorchvision)
{
    // torchvision.models.alexnet(num_classes=1000): 61,100,840.
    EXPECT_EQ(param_count(alexnet_imagenet()), 61100840);
}

TEST(Models, AlexNetCifarShapesFlowTo100Classes)
{
    const Model m = alexnet_cifar();
    const auto infos = infer(m.graph, m.input_shape(16));
    // Penultimate node (pre-loss) is the classifier output.
    const auto &logits = infos[infos.size() - 2];
    EXPECT_EQ(logits.out_shape, (Shape{16, 100}));
}

TEST(Models, Vgg16MatchesTorchvision)
{
    // torchvision.models.vgg16(num_classes=1000): 138,357,544.
    EXPECT_EQ(param_count(vgg16()), 138357544);
}

TEST(Models, Vgg16BnAddsNormParams)
{
    // vgg16_bn: 138,365,992 (adds 2*2*C per conv layer).
    EXPECT_EQ(param_count(vgg16(1000, true)), 138365992);
}

TEST(Models, ResNetFamilyMatchesTorchvision)
{
    EXPECT_EQ(param_count(resnet(18)), 11689512);
    EXPECT_EQ(param_count(resnet(34)), 21797672);
    EXPECT_EQ(param_count(resnet(50)), 25557032);
    EXPECT_EQ(param_count(resnet(101)), 44549160);
    EXPECT_EQ(param_count(resnet(152)), 60192808);
}

TEST(Models, ResNetRejectsUnknownDepth)
{
    EXPECT_THROW(resnet(19), Error);
    EXPECT_THROW(resnet(0), Error);
}

TEST(Models, ResNetShapePipeline)
{
    const Model m = resnet(50);
    const auto infos = infer(m.graph, m.input_shape(8));
    // Final feature map before pooling is (8, 2048, 7, 7).
    bool found = false;
    for (const auto &info : infos) {
        if (info.out_shape == Shape{8, 2048, 7, 7})
            found = true;
    }
    EXPECT_TRUE(found);
    const auto &logits = infos[infos.size() - 2];
    EXPECT_EQ(logits.out_shape, (Shape{8, 1000}));
}

TEST(Models, InceptionChannelPlanReaches1024)
{
    const Model m = inception_v1();
    const auto infos = infer(m.graph, m.input_shape(4));
    bool found_832 = false;
    bool found_1024 = false;
    for (const auto &info : infos) {
        if (info.out_shape == Shape{4, 832, 14, 14})
            found_832 = true;
        if (info.out_shape == Shape{4, 1024, 7, 7})
            found_1024 = true;
    }
    EXPECT_TRUE(found_832) << "inception4e output";
    EXPECT_TRUE(found_1024) << "inception5b output";
    // Original GoogLeNet: ~6-8M trainable params (ours uses 5x5
    // branch convs + BN, slightly above torchvision's 3x3 variant).
    EXPECT_GT(param_count(m), 5000000);
    EXPECT_LT(param_count(m), 9000000);
}

TEST(Models, MobileNetV1MatchesReferenceCount)
{
    // Canonical MobileNetV1 1.0/224: 4,231,976 trainable params.
    EXPECT_EQ(param_count(mobilenet_v1()), 4231976);
}

TEST(Models, MobileNetDepthwiseConvsAreGrouped)
{
    const Model m = mobilenet_v1();
    const auto infos = infer(m.graph, m.input_shape(2));
    // block1.dw: depthwise 3x3 over 32 channels → weight (32,1,3,3).
    bool found = false;
    for (const auto &info : infos) {
        for (const auto &p : info.params) {
            if (p.name == "block1.dw.weight") {
                EXPECT_EQ(p.shape, (Shape{32, 1, 3, 3}));
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(Models, SqueezeNetMatchesTorchvision)
{
    // torchvision.models.squeezenet1_0: 1,248,424 params.
    EXPECT_EQ(param_count(squeezenet()), 1248424);
}

TEST(Models, SqueezeNetFireConcatWidths)
{
    const Model m = squeezenet();
    const auto infos = infer(m.graph, m.input_shape(2));
    bool found_512 = false;
    for (const auto &info : infos) {
        if (info.out_shape.rank() == 4 &&
            info.out_shape.dim(1) == 512)
            found_512 = true;
    }
    EXPECT_TRUE(found_512) << "fire8/fire9 output 512 channels";
}

TEST(Models, EveryModelEndsInALoss)
{
    for (const Model &m :
         {mlp(), alexnet_imagenet(), alexnet_cifar(), vgg16(),
          resnet(18), inception_v1(), mobilenet_v1(), squeezenet()}) {
        EXPECT_EQ(m.graph.nodes().back().kind,
                  LayerKind::kSoftmaxCrossEntropy)
            << m.name;
    }
}

TEST(Models, InputShapePrependsBatch)
{
    const Model m = resnet(18);
    EXPECT_EQ(m.input_shape(32), (Shape{32, 3, 224, 224}));
    EXPECT_THROW(m.input_shape(0), Error);
    EXPECT_THROW(m.input_shape(-4), Error);
}

TEST(Models, ParameterBytesScaleWithDepth)
{
    const auto bytes = [](int depth) {
        const Model m = resnet(depth);
        return total_param_bytes(infer(m.graph, m.input_shape(1)));
    };
    EXPECT_LT(bytes(18), bytes(34));
    EXPECT_LT(bytes(34), bytes(50));
    EXPECT_LT(bytes(50), bytes(101));
    EXPECT_LT(bytes(101), bytes(152));
}

}  // namespace
}  // namespace nn
}  // namespace pinpoint
