/** @file Unit tests for VirtualClock. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "sim/clock.h"

namespace pinpoint {
namespace sim {
namespace {

TEST(VirtualClock, StartsAtGivenTime)
{
    EXPECT_EQ(VirtualClock().now(), 0u);
    EXPECT_EQ(VirtualClock(42).now(), 42u);
}

TEST(VirtualClock, AdvanceAccumulates)
{
    VirtualClock c;
    c.advance(10);
    c.advance(5);
    EXPECT_EQ(c.now(), 15u);
}

TEST(VirtualClock, AdvanceUsConvertsAndRounds)
{
    VirtualClock c;
    c.advance_us(25.0);
    EXPECT_EQ(c.now(), 25u * kNsPerUs);
    c.advance_us(0.0004);  // rounds to 0 ns
    EXPECT_EQ(c.now(), 25u * kNsPerUs);
    c.advance_us(0.0006);  // rounds to 1 ns
    EXPECT_EQ(c.now(), 25u * kNsPerUs + 1);
}

TEST(VirtualClock, AdvanceUsRejectsNegative)
{
    VirtualClock c;
    EXPECT_THROW(c.advance_us(-1.0), Error);
}

TEST(VirtualClock, AdvanceToMonotonic)
{
    VirtualClock c(100);
    c.advance_to(100);  // no-op is fine
    c.advance_to(250);
    EXPECT_EQ(c.now(), 250u);
    EXPECT_THROW(c.advance_to(249), Error);
}

}  // namespace
}  // namespace sim
}  // namespace pinpoint
