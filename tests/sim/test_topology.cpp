/**
 * @file
 * Multi-device topology: interconnect presets, ring all-reduce leg
 * arithmetic against hand-computed schedules, and the contended vs
 * dedicated ordering the stateful peer links exist to expose.
 */
#include <gtest/gtest.h>

#include "analysis/swap_model.h"
#include "core/check.h"
#include "sim/topology.h"

namespace pinpoint {
namespace sim {
namespace {

/** Round-number interconnect: 1 GB/s (decimal), 500 ns setup. */
InterconnectSpec
test_interconnect()
{
    InterconnectSpec s;
    s.name = "test link";
    s.peer_bw_bps = 1e9;
    s.latency_ns = 500;
    return s;
}

TEST(InterconnectPresets, LookupByNameAndRoundTrip)
{
    const InterconnectSpec pcie = interconnect_by_name("pcie");
    EXPECT_EQ(pcie.name, InterconnectSpec::pcie_p2p().name);
    EXPECT_GT(pcie.peer_bw_bps, 0.0);

    const InterconnectSpec nvlink = interconnect_by_name("nvlink");
    EXPECT_EQ(nvlink.name, InterconnectSpec::nvlink().name);
    // The NVLink-class preset must actually be the faster one.
    EXPECT_GT(nvlink.peer_bw_bps, pcie.peer_bw_bps);
    EXPECT_LT(nvlink.latency_ns, pcie.latency_ns);

    EXPECT_EQ(interconnect_names(),
              (std::vector<std::string>{"pcie", "nvlink"}));
    EXPECT_EQ(interconnect_preset_name(pcie), "pcie");
    EXPECT_EQ(interconnect_preset_name(nvlink), "nvlink");
    EXPECT_EQ(interconnect_preset_name(test_interconnect()), "");
}

TEST(InterconnectPresets, UnknownNameIsATypedUsageError)
{
    EXPECT_THROW(interconnect_by_name("infiniband"), UsageError);
    try {
        interconnect_by_name("infiniband");
        FAIL() << "expected UsageError";
    } catch (const UsageError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown topology 'infiniband'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("pcie, nvlink"), std::string::npos) << msg;
    }
}

TEST(Topology, ConstructionValidates)
{
    EXPECT_THROW(
        Topology(DeviceSpec::tiny_test_device(), 0,
                 test_interconnect()),
        Error);
    // A single device needs no interconnect at all.
    EXPECT_NO_THROW(Topology(DeviceSpec::tiny_test_device(), 1,
                             InterconnectSpec{}));
    // Multiple devices do.
    EXPECT_THROW(Topology(DeviceSpec::tiny_test_device(), 2,
                          InterconnectSpec{}),
                 Error);
}

TEST(Topology, PeerLinkCountIsZeroForOneDeviceElseN)
{
    Topology one(DeviceSpec::tiny_test_device(), 1,
                 test_interconnect());
    EXPECT_EQ(one.peer_link_count(), 0);

    Topology four(DeviceSpec::tiny_test_device(), 4,
                  test_interconnect());
    EXPECT_EQ(four.peer_link_count(), 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(
            four.peer_link(i).bandwidth_bps(CopyDir::kDeviceToHost),
            1e9);
        EXPECT_EQ(four.peer_link(i).latency_ns(), 500);
    }
    EXPECT_THROW(four.peer_link(4), Error);
}

TEST(Topology, HostLinkUsesTheMeasuredDeviceRatesWithoutLatency)
{
    const DeviceSpec device = DeviceSpec::titan_x_pascal();
    Topology t(device, 2, test_interconnect());
    const LinkScheduler host = t.make_host_link();
    EXPECT_DOUBLE_EQ(host.bandwidth_bps(CopyDir::kDeviceToHost),
                     device.d2h_bw_bps);
    EXPECT_DOUBLE_EQ(host.bandwidth_bps(CopyDir::kHostToDevice),
                     device.h2d_bw_bps);
    EXPECT_EQ(host.latency_ns(), 0);
}

TEST(RingAllReduce, IdealMatchesHandComputation)
{
    // 4 MB over 4 devices on a 1 GB/s, 500 ns link:
    //   chunk = 1'000'000 B -> 1'000'000 ns per transfer,
    //   step  = 500 + 1'000'000,
    //   steps = 2 * (4 - 1) = 6,
    //   ideal = 6 * 1'000'500 = 6'003'000 ns.
    EXPECT_EQ(ring_all_reduce_ideal_ns(4'000'000, 4,
                                       test_interconnect()),
              6'003'000);
    // Chunks round up: 10 B over 4 devices is a 3 B chunk.
    EXPECT_EQ(ring_all_reduce_ideal_ns(10, 4, test_interconnect()),
              6 * (500 + analysis::transfer_ns(3, 1e9)));
    // Degenerate cases price to zero.
    EXPECT_EQ(ring_all_reduce_ideal_ns(4'000'000, 1,
                                       test_interconnect()),
              0);
    EXPECT_EQ(ring_all_reduce_ideal_ns(0, 4, test_interconnect()),
              0);
}

TEST(RingAllReduce, LegArithmeticOnAnIdleRing)
{
    Topology t(DeviceSpec::tiny_test_device(), 4,
               test_interconnect());
    const AllReduceResult ar = t.all_reduce(4'000'000, 1000);

    EXPECT_EQ(ar.devices, 4);
    EXPECT_EQ(ar.bytes, 4'000'000u);
    EXPECT_EQ(ar.chunk_bytes, 1'000'000u);
    EXPECT_EQ(ar.ready, 1000);
    // 6 lockstep steps x 4 ring edges.
    ASSERT_EQ(ar.legs.size(), 24u);
    // On an idle ring every step takes latency + chunk transfer and
    // the finish is exactly the dedicated-ring ideal.
    EXPECT_EQ(ar.ideal_ns, 6'003'000);
    EXPECT_EQ(ar.duration(), ar.ideal_ns);
    EXPECT_EQ(ar.finish, 1000 + 6'003'000);
    EXPECT_EQ(ar.stall_ns(), 0);

    // Legs are in (step, device) order, lockstep per step.
    for (int step = 0; step < 6; ++step) {
        const TimeNs step_start =
            1000 + static_cast<TimeNs>(step) * 1'000'500;
        for (int d = 0; d < 4; ++d) {
            const CollectiveLeg &leg =
                ar.legs[static_cast<std::size_t>(step * 4 + d)];
            EXPECT_EQ(leg.step, step);
            EXPECT_EQ(leg.device, d);
            EXPECT_EQ(leg.transfer.bytes, 1'000'000u);
            EXPECT_EQ(leg.transfer.ready_time, step_start);
            EXPECT_EQ(leg.transfer.start_time, step_start);
            EXPECT_EQ(leg.transfer.end_time,
                      step_start + 1'000'500);
        }
    }
}

TEST(RingAllReduce, SingleDeviceIsANoOp)
{
    Topology t(DeviceSpec::tiny_test_device(), 1,
               test_interconnect());
    const AllReduceResult ar = t.all_reduce(4'000'000, 777);
    EXPECT_TRUE(ar.legs.empty());
    EXPECT_EQ(ar.finish, 777);
    EXPECT_EQ(ar.duration(), 0);
    EXPECT_EQ(ar.ideal_ns, 0);
}

TEST(RingAllReduce, ContendedIsNeverFasterThanDedicated)
{
    // Two all-reduces with overlapping ready times: the second
    // queues behind the first's traffic on every edge, so its legs
    // slip and the slip is reported as stall.
    Topology t(DeviceSpec::tiny_test_device(), 4,
               test_interconnect());
    const AllReduceResult first = t.all_reduce(4'000'000, 0);
    const AllReduceResult second = t.all_reduce(4'000'000, 0);

    EXPECT_EQ(first.duration(), first.ideal_ns);
    EXPECT_GE(second.duration(), second.ideal_ns);
    EXPECT_GT(second.stall_ns(), 0);
    // FIFO per edge: the second collective's step-0 legs start only
    // after the first collective's traffic drains.
    EXPECT_GE(second.legs.front().transfer.start_time,
              first.legs.back().transfer.end_time);

    // After forgetting the traffic the same submission is dedicated
    // again — bandwidths survive the reset.
    t.reset_links();
    const AllReduceResult fresh = t.all_reduce(4'000'000, 0);
    EXPECT_EQ(fresh.duration(), fresh.ideal_ns);
}

TEST(Topology, BusyFractionAveragesTheRingEdges)
{
    Topology t(DeviceSpec::tiny_test_device(), 2,
               test_interconnect());
    EXPECT_DOUBLE_EQ(t.interconnect_busy_fraction(1'000'000), 0.0);
    const AllReduceResult ar = t.all_reduce(2'000'000, 0);
    const double busy = t.interconnect_busy_fraction(ar.finish);
    EXPECT_GT(busy, 0.0);
    EXPECT_LE(busy, 1.0);

    Topology one(DeviceSpec::tiny_test_device(), 1,
                 test_interconnect());
    EXPECT_DOUBLE_EQ(one.interconnect_busy_fraction(1'000'000), 0.0);
}

TEST(Topology, FromPresetsResolvesBothNames)
{
    const Topology t = Topology::from_presets("titan-x", 2, "nvlink");
    EXPECT_EQ(t.device_count(), 2);
    EXPECT_EQ(t.device().name, DeviceSpec::titan_x_pascal().name);
    EXPECT_EQ(t.interconnect().name,
              InterconnectSpec::nvlink().name);
    EXPECT_THROW(Topology::from_presets("h100", 2, "nvlink"),
                 UsageError);
    EXPECT_THROW(Topology::from_presets("titan-x", 2, "token-ring"),
                 UsageError);
}

}  // namespace
}  // namespace sim
}  // namespace pinpoint
