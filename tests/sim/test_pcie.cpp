/** @file Unit tests for the bandwidthTest equivalent. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "sim/pcie.h"

namespace pinpoint {
namespace sim {
namespace {

class BandwidthTestFixture : public ::testing::Test
{
  protected:
    CostModel cost_{DeviceSpec::titan_x_pascal()};
    BandwidthTest bw_{cost_};
};

TEST_F(BandwidthTestFixture, AsymptoticApproachesSpecBandwidth)
{
    const auto &spec = cost_.spec();
    const double h2d = bw_.asymptotic_bps(CopyDir::kHostToDevice);
    const double d2h = bw_.asymptotic_bps(CopyDir::kDeviceToHost);
    // Within 5% of nominal at 32 MB transfers.
    EXPECT_NEAR(h2d / spec.h2d_bw_bps, 1.0, 0.05);
    EXPECT_NEAR(d2h / spec.d2h_bw_bps, 1.0, 0.05);
    // And below nominal (setup latency can only hurt).
    EXPECT_LT(h2d, spec.h2d_bw_bps);
    EXPECT_LT(d2h, spec.d2h_bw_bps);
}

TEST_F(BandwidthTestFixture, SmallTransfersAreLatencyBound)
{
    const auto small = bw_.measure(CopyDir::kHostToDevice, 4096);
    const auto big =
        bw_.measure(CopyDir::kHostToDevice, 32ull << 20);
    EXPECT_LT(small.effective_bps, 0.5 * big.effective_bps);
}

TEST_F(BandwidthTestFixture, EffectiveBandwidthMonotonicInSize)
{
    double prev = 0.0;
    for (std::size_t sz = 4096; sz <= (64ull << 20); sz *= 4) {
        const auto s = bw_.measure(CopyDir::kDeviceToHost, sz);
        EXPECT_GT(s.effective_bps, prev);
        prev = s.effective_bps;
    }
}

TEST_F(BandwidthTestFixture, SweepCoversBothDirections)
{
    const auto samples = bw_.sweep(1 << 20, 4 << 20);
    std::size_t h2d = 0;
    std::size_t d2h = 0;
    for (const auto &s : samples) {
        if (s.dir == CopyDir::kHostToDevice)
            ++h2d;
        else
            ++d2h;
    }
    EXPECT_EQ(h2d, 3u);  // 1, 2, 4 MB
    EXPECT_EQ(d2h, 3u);
}

TEST_F(BandwidthTestFixture, InvalidArgumentsRejected)
{
    EXPECT_THROW(bw_.measure(CopyDir::kHostToDevice, 0), Error);
    EXPECT_THROW(bw_.measure(CopyDir::kHostToDevice, 1024, 0), Error);
    EXPECT_THROW(bw_.sweep(0, 1024), Error);
    EXPECT_THROW(bw_.sweep(2048, 1024), Error);
}

}  // namespace
}  // namespace sim
}  // namespace pinpoint
