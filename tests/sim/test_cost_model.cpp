/** @file Unit tests for the roofline CostModel. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "sim/cost_model.h"

namespace pinpoint {
namespace sim {
namespace {

DeviceSpec
simple_spec()
{
    DeviceSpec s;
    s.name = "unit";
    s.dram_bytes = 1ull << 30;
    s.dram_bw_bps = 1e9;      // 1 GB/s: 1 byte == 1 ns
    s.fp32_flops = 1e9;       // 1 GFLOP/s: 1 flop == 1 ns
    s.launch_overhead_ns = 100;
    s.h2d_bw_bps = 1e8;
    s.d2h_bw_bps = 2e8;
    s.memcpy_latency_ns = 50;
    return s;
}

TEST(CostModel, ComputeBoundKernel)
{
    CostModel m(simple_spec());
    // 10k flops vs 1k bytes of traffic: compute dominates.
    EXPECT_EQ(m.kernel_time(10000.0, 500, 500), 100u + 10000u);
}

TEST(CostModel, MemoryBoundKernel)
{
    CostModel m(simple_spec());
    // 100 flops vs 10k bytes of traffic: memory dominates.
    EXPECT_EQ(m.kernel_time(100.0, 6000, 4000), 100u + 10000u);
}

TEST(CostModel, ZeroWorkIsJustLaunchOverhead)
{
    CostModel m(simple_spec());
    EXPECT_EQ(m.kernel_time(0.0, 0, 0), 100u);
}

TEST(CostModel, NegativeFlopsRejected)
{
    CostModel m(simple_spec());
    EXPECT_THROW(m.kernel_time(-1.0, 0, 0), Error);
}

TEST(CostModel, H2dTimeIsLatencyPlusBandwidth)
{
    CostModel m(simple_spec());
    // 1e8 bytes at 1e8 B/s = 1 s.
    EXPECT_EQ(m.h2d_time(100000000), 50u + kNsPerSec);
}

TEST(CostModel, D2hUsesItsOwnBandwidth)
{
    CostModel m(simple_spec());
    EXPECT_EQ(m.d2h_time(200000000), 50u + kNsPerSec);
}

TEST(CostModel, D2dReadsAndWritesDram)
{
    CostModel m(simple_spec());
    EXPECT_EQ(m.d2d_time(1000), 100u + 2000u);
}

TEST(CostModel, DriverCallTimesComeFromSpec)
{
    DeviceSpec s = simple_spec();
    s.cuda_malloc_ns = 1234;
    s.cuda_free_ns = 567;
    CostModel m(s);
    EXPECT_EQ(m.cuda_malloc_time(), 1234u);
    EXPECT_EQ(m.cuda_free_time(), 567u);
}

TEST(CostModel, MonotonicInTraffic)
{
    CostModel m(simple_spec());
    TimeNs prev = 0;
    for (std::size_t bytes = 1024; bytes <= 1024 * 1024; bytes *= 2) {
        const TimeNs t = m.kernel_time(0.0, bytes, bytes);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

}  // namespace
}  // namespace sim
}  // namespace pinpoint
