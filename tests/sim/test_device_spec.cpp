/** @file Unit tests for the device presets. */
#include <gtest/gtest.h>

#include "sim/device_spec.h"

namespace pinpoint {
namespace sim {
namespace {

TEST(DeviceSpec, TitanXMatchesPaperTestbed)
{
    const DeviceSpec s = DeviceSpec::titan_x_pascal();
    EXPECT_EQ(s.dram_bytes, 12ull * 1024 * 1024 * 1024);
    // The paper's bandwidthTest measurements: 6.3 / 6.4 GB/s.
    EXPECT_NEAR(s.h2d_bw_bps / (1024.0 * 1024.0 * 1024.0), 6.3, 1e-9);
    EXPECT_NEAR(s.d2h_bw_bps / (1024.0 * 1024.0 * 1024.0), 6.4, 1e-9);
    EXPECT_GT(s.fp32_flops, 1e13);
    EXPECT_GT(s.launch_overhead_ns, 0u);
}

TEST(DeviceSpec, A100HasAmpereCapacity)
{
    const DeviceSpec s = DeviceSpec::a100_40gb();
    // The intro's reference: Ampere DRAM size is 40 GB.
    EXPECT_EQ(s.dram_bytes, 40ull * 1024 * 1024 * 1024);
    EXPECT_GT(s.dram_bw_bps,
              DeviceSpec::titan_x_pascal().dram_bw_bps);
}

TEST(DeviceSpec, TinyDeviceIsSmall)
{
    const DeviceSpec s = DeviceSpec::tiny_test_device();
    EXPECT_LE(s.dram_bytes, 1ull << 30);
}

}  // namespace
}  // namespace sim
}  // namespace pinpoint
