/** @file Unit tests for the shared-link transfer scheduler. */
#include <gtest/gtest.h>

#include "analysis/swap_model.h"
#include "core/check.h"
#include "sim/device_spec.h"
#include "sim/link_scheduler.h"

namespace pinpoint {
namespace sim {
namespace {

constexpr double kBps = 1e9;  // 1 GB/s: 1 byte per nanosecond
constexpr std::size_t kGB = 1000 * 1000 * 1000;

TEST(LinkScheduler, SameDirectionTransfersSerialize)
{
    LinkScheduler link(kBps, kBps);
    const auto a =
        link.submit(CopyDir::kDeviceToHost, kGB, 0);
    EXPECT_EQ(a.start_time, 0u);
    EXPECT_EQ(a.end_time, kNsPerSec);
    EXPECT_EQ(a.queue_delay(), 0u);

    // Ready at 0 but the channel is busy until 1 s: FIFO queues it.
    const auto b = link.submit(CopyDir::kDeviceToHost, kGB, 0);
    EXPECT_EQ(b.start_time, kNsPerSec);
    EXPECT_EQ(b.end_time, 2 * kNsPerSec);
    EXPECT_EQ(b.queue_delay(), kNsPerSec);
}

TEST(LinkScheduler, OppositeDirectionsAreFullDuplex)
{
    LinkScheduler link(kBps, kBps);
    link.submit(CopyDir::kDeviceToHost, kGB, 0);
    const auto in = link.submit(CopyDir::kHostToDevice, kGB, 0);
    EXPECT_EQ(in.start_time, 0u)
        << "an H2D copy must not queue behind D2H traffic";
    EXPECT_EQ(in.queue_delay(), 0u);
}

TEST(LinkScheduler, IdleGapsAreNotBusyTime)
{
    LinkScheduler link(kBps, kBps);
    link.submit(CopyDir::kDeviceToHost, kGB, 0);
    // Ready long after the channel drained: starts on time.
    const auto late =
        link.submit(CopyDir::kDeviceToHost, kGB, 5 * kNsPerSec);
    EXPECT_EQ(late.start_time, 5 * kNsPerSec);
    EXPECT_EQ(link.busy_time(CopyDir::kDeviceToHost),
              2 * kNsPerSec)
        << "the idle gap between transfers is not busy time";
    EXPECT_EQ(link.busy_until(CopyDir::kDeviceToHost),
              6 * kNsPerSec);
}

TEST(LinkScheduler, DurationsUseTheSharedRoundingHelper)
{
    const DeviceSpec spec = DeviceSpec::titan_x_pascal();
    LinkScheduler link(spec.d2h_bw_bps, spec.h2d_bw_bps);
    const std::size_t odd = 333333333;
    const auto t = link.submit(CopyDir::kDeviceToHost, odd, 0);
    EXPECT_EQ(t.duration(),
              analysis::transfer_ns(odd, spec.d2h_bw_bps));
}

TEST(LinkScheduler, BusyFractionAveragesBothDirections)
{
    LinkScheduler link(kBps, kBps);
    EXPECT_EQ(link.busy_fraction(kNsPerSec), 0.0);
    link.submit(CopyDir::kDeviceToHost, kGB, 0);
    // One of two channels busy the full window.
    EXPECT_DOUBLE_EQ(link.busy_fraction(kNsPerSec), 0.5);
    link.submit(CopyDir::kHostToDevice, kGB, 0);
    EXPECT_DOUBLE_EQ(link.busy_fraction(kNsPerSec), 1.0);
    // A wider window dilutes the occupancy.
    EXPECT_DOUBLE_EQ(link.busy_fraction(2 * kNsPerSec), 0.5);
}

TEST(LinkScheduler, BusyFractionWindowClampsToScheduledTraffic)
{
    LinkScheduler link(kBps, kBps);
    link.submit(CopyDir::kDeviceToHost, kGB, 0);
    // A window shorter than the traffic cannot exceed saturation.
    EXPECT_DOUBLE_EQ(link.busy_fraction(0), 0.5);
    EXPECT_LE(link.busy_fraction(1), 1.0);
}

TEST(LinkScheduler, TracksBytesAndHistoryPerDirection)
{
    LinkScheduler link(kBps, 2 * kBps);
    link.submit(CopyDir::kDeviceToHost, 100, 0);
    link.submit(CopyDir::kDeviceToHost, 200, 0);
    link.submit(CopyDir::kHostToDevice, 50, 0);
    EXPECT_EQ(link.bytes_moved(CopyDir::kDeviceToHost), 300u);
    EXPECT_EQ(link.bytes_moved(CopyDir::kHostToDevice), 50u);
    EXPECT_EQ(link.transfer_count(), 3u);
    ASSERT_EQ(link.history().size(), 3u);
    EXPECT_EQ(link.history()[1].bytes, 200u);
    EXPECT_EQ(link.bandwidth_bps(CopyDir::kHostToDevice), 2 * kBps);
}

TEST(LinkScheduler, ResetForgetsTrafficKeepsBandwidth)
{
    LinkScheduler link(kBps, kBps);
    link.submit(CopyDir::kDeviceToHost, kGB, 0);
    link.reset();
    EXPECT_EQ(link.transfer_count(), 0u);
    EXPECT_EQ(link.busy_until(CopyDir::kDeviceToHost), 0u);
    EXPECT_EQ(link.busy_time(CopyDir::kDeviceToHost), 0u);
    EXPECT_EQ(link.bytes_moved(CopyDir::kDeviceToHost), 0u);
    const auto t = link.submit(CopyDir::kDeviceToHost, kGB, 0);
    EXPECT_EQ(t.start_time, 0u);
    EXPECT_EQ(t.end_time, kNsPerSec);
}

TEST(LinkScheduler, FromMeasuredUsesBandwidthTestAsymptote)
{
    const CostModel model(DeviceSpec::titan_x_pascal());
    const auto link = LinkScheduler::from_measured(model);
    const BandwidthTest bw(model);
    EXPECT_DOUBLE_EQ(link.bandwidth_bps(CopyDir::kDeviceToHost),
                     bw.asymptotic_bps(CopyDir::kDeviceToHost));
    EXPECT_DOUBLE_EQ(link.bandwidth_bps(CopyDir::kHostToDevice),
                     bw.asymptotic_bps(CopyDir::kHostToDevice));
    // Effective bandwidth includes setup latency: at or below spec.
    EXPECT_LE(link.bandwidth_bps(CopyDir::kDeviceToHost),
              DeviceSpec::titan_x_pascal().d2h_bw_bps);
}

TEST(LinkScheduler, RejectsNonPositiveBandwidth)
{
    EXPECT_THROW(LinkScheduler(0.0, kBps), Error);
    EXPECT_THROW(LinkScheduler(kBps, -1.0), Error);
}

}  // namespace
}  // namespace sim
}  // namespace pinpoint
