// lint-fixture-path: bench/good_strategies.cpp
// Fixture: must lint clean. Per-Strategy arrays are read via the
// Strategy enumerator (or a loop variable, which survives enum
// growth because kNumStrategies grows with it).
#include "relief/strategy_planner.h"

namespace pinpoint {

std::size_t
good_hybrid_savings(const relief::StrategyPlanner &planner,
                    const analysis::TraceView &view)
{
    const auto reports = planner.plan_all(view);
    std::size_t best = 0;
    for (int i = 0; i < relief::kNumStrategies; ++i)
        best = std::max(
            best,
            reports[static_cast<std::size_t>(i)].peak_reduction_bytes);
    const auto &hybrid = reports[static_cast<std::size_t>(
        relief::Strategy::kHybrid)];
    return best + hybrid.peak_reduction_bytes;
}

}  // namespace pinpoint
