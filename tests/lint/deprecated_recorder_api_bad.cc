// lint-fixture-path: src/analysis/rogue_counts.cc
// Fixture: MUST trigger [deprecated-recorder-api].
// TraceRecorder::count rescans every event per call; analysis code
// reads the TraceView's cached per-kind counts instead.
#include "trace/recorder.h"

namespace pinpoint {
namespace analysis {

std::size_t
rogue_malloc_count(const trace::TraceRecorder &recorder)
{
    return recorder.count(trace::EventKind::kMalloc);  // violation
}

}  // namespace analysis
}  // namespace pinpoint
