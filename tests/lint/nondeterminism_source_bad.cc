// lint-fixture-path: src/sim/rogue_jitter.cc
// Fixture: MUST trigger [nondeterminism-source]. Seeding simulated
// jitter from the host wall clock makes every run unreproducible
// and breaks the --jobs 1 == --jobs 8 byte-identity contract.
#include <cstdlib>
#include <ctime>

namespace pinpoint {
namespace sim {

unsigned
rogue_jitter()
{
    std::srand(static_cast<unsigned>(time(nullptr)));  // violation
    return static_cast<unsigned>(std::rand());         // violation
}

}  // namespace sim
}  // namespace pinpoint
