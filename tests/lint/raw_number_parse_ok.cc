// lint-fixture-path: src/cli/good_flag.cc
// Fixture: must lint clean. The strict core/parse helpers are the
// one text-to-number surface; mentioning std::stoll in prose (this
// comment) must not fire, and a justified raw call can be
// suppressed in place.
#include <string>

#include "core/parse.h"

namespace pinpoint {

int
good_parse(const std::string &text)
{
    int value = 0;
    if (!parse_int(text, value))
        value = -1;
    // Interop shim for a third-party header; reviewed by hand.
    // lint: allow(raw-number-parse)
    const long suppressed = std::stol(text);
    return value + static_cast<int>(suppressed);
}

}  // namespace pinpoint
