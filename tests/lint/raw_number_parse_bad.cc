// lint-fixture-path: src/cli/rogue_flag.cc
// Fixture: MUST trigger [raw-number-parse]. std::stoi accepts
// "12abc" as 12, so a typo'd flag value silently becomes a valid
// workload instead of a UsageError.
#include <string>

namespace pinpoint {

int
rogue_parse(const std::string &text)
{
    return std::stoi(text);  // violation
}

}  // namespace pinpoint
