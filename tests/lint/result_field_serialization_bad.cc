// lint-fixture-path: src/cli/rogue_row_printer.cc
// Fixture: MUST trigger [result-field-serialization].
// Streaming a ScenarioResult metric field outside the export codec
// creates a second byte format the cache/spill salt cannot see.
#include <ostream>

#include "sweep/driver.h"

namespace pinpoint {
namespace cli {

void
rogue_row(std::ostream &os, const sweep::ScenarioResult &r)
{
    os << r.peak_total_bytes;  // violation: bypasses the codec
}

}  // namespace cli
}  // namespace pinpoint
