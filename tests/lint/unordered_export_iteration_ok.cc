// lint-fixture-path: src/sweep/good_export.cc
// Fixture: must lint clean. The blessed idiom (trace/slice.cc):
// collect the keys, sort, then emit in the sorted order.
#include <algorithm>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace pinpoint {
namespace sweep {

void
good_export(const std::unordered_map<std::string, int> &rows,
            std::ostream &os)
{
    std::vector<std::string> keys;
    keys.reserve(rows.size());
    for (const auto &kv : rows)  // lint: allow(unordered-export-iteration)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (const auto &key : keys)
        os << key << "," << rows.at(key) << "\n";
}

}  // namespace sweep
}  // namespace pinpoint
