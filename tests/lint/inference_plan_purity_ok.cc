// lint-fixture-path: src/runtime/request_stream.cc
// Fixture: must lint clean. The serving driver only ever emits
// forward-phase work; phase names appearing in comments (backward,
// optimizer) are masked and never match.
namespace pinpoint {
namespace runtime {

void
append_request_work(Plan &plan, const Op &fwd_op)
{
    Op op = fwd_op;
    op.phase = OpPhase::kForward;
    plan.iteration_ops.push_back(op);
}

}  // namespace runtime
}  // namespace pinpoint
