// lint-fixture-path: src/sim/noisy_model.cc
// Fixture: must lint clean. The allow comment is live — the line
// it covers really does violate nondeterminism-source, so the
// suppression is doing its documented job and is not stale.
namespace pinpoint {
namespace sim {

unsigned
jitter_seed()
{
    return rand();  // lint: allow(nondeterminism-source)
}

}  // namespace sim
}  // namespace pinpoint
