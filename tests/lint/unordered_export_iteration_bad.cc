// lint-fixture-path: src/sweep/rogue_export.cc
// Fixture: MUST trigger [unordered-export-iteration]. Emitting rows
// straight out of an unordered_map puts libstdc++'s hash order into
// the output bytes — the exact class of nondeterminism the CSV/JSON
// exporters are tested against.
#include <ostream>
#include <string>
#include <unordered_map>

namespace pinpoint {
namespace sweep {

void
rogue_export(const std::unordered_map<std::string, int> &rows_in,
             std::ostream &os)
{
    std::unordered_map<std::string, int> rows(rows_in);
    for (const auto &kv : rows)  // violation: hash order
        os << kv.first << "," << kv.second << "\n";
}

}  // namespace sweep
}  // namespace pinpoint
