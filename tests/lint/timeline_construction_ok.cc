// lint-fixture-path: src/analysis/good_consumer.cc
// Fixture: must lint clean. Consumers borrow the one shared
// Timeline from the TraceView; member calls and references whose
// names merely contain "timeline" do not match the rule.
#include "analysis/trace_view.h"

namespace pinpoint {
namespace analysis {

std::size_t
shared_peak(const TraceView &view)
{
    const Timeline &shared = view.timeline();
    return shared.peak_bytes();
}

}  // namespace analysis
}  // namespace pinpoint
