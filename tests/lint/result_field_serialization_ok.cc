// lint-fixture-path: src/cli/good_row_printer.cc
// Fixture: must lint clean. The identity/bookkeeping fields
// (scenario, status, error) may be printed by anyone — the CLI's
// tables do — and reading a metric field without emitting it is
// ordinary computation, not serialization.
#include <ostream>

#include "sweep/driver.h"

namespace pinpoint {
namespace cli {

void
good_row(std::ostream &os, const sweep::ScenarioResult &r)
{
    os << r.scenario.id() << " " << r.error;
    const auto peak = r.peak_total_bytes;
    if (peak > 0)
        os << "over";
}

}  // namespace cli
}  // namespace pinpoint
