// lint-fixture-path: src/sim/quiet_model.cc
// Fixture: MUST trigger [stale-suppression]. Both allow comments
// shield nothing: the first sits on a line its rule no longer
// matches (the positional index was fixed but the comment stayed),
// the second names a rule that does not exist.
namespace pinpoint {
namespace sim {

int
pick_strategy_cost(int base)
{
    int cost = base;  // lint: allow(positional-strategy-index)
    // lint: allow(no-such-rule)
    return cost;
}

}  // namespace sim
}  // namespace pinpoint
