// lint-fixture-path: src/analysis/good_counts.cc
// Fixture: must lint clean. view.count() reads the cached per-kind
// totals, and .count() on ordinary containers (unordered_set
// membership tests) is not the deprecated recorder API.
#include <unordered_set>

#include "analysis/trace_view.h"

namespace pinpoint {
namespace analysis {

std::size_t
good_malloc_count(const TraceView &view,
                  const std::unordered_set<BlockId> &tracked,
                  BlockId block)
{
    std::size_t n = view.count(trace::EventKind::kMalloc);
    if (tracked.count(block))
        ++n;
    return n;
}

}  // namespace analysis
}  // namespace pinpoint
