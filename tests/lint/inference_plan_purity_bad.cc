// lint-fixture-path: src/runtime/request_stream.cc
// Fixture: MUST trigger [inference-plan-purity]. Emitting a
// backward-phase op from the serving driver would ship training
// work into inference sessions and break the zoo-wide no-backward
// property.
namespace pinpoint {
namespace runtime {

void
append_training_work(Plan &plan, const Op &grad_op)
{
    Op op = grad_op;
    op.phase = OpPhase::kBackward;
    plan.iteration_ops.push_back(op);
}

}  // namespace runtime
}  // namespace pinpoint
