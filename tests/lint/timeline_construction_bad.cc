// lint-fixture-path: src/analysis/rogue_index.cc
// Fixture: MUST trigger [timeline-construction]. A consumer builds
// its own Timeline instead of borrowing view.timeline() — the exact
// rebuild-per-consumer cost PR 5 removed.
#include "analysis/timeline.h"

namespace pinpoint {
namespace analysis {

std::size_t
rogue_peak(const TraceView &view)
{
    Timeline private_rebuild = Timeline();  // violation
    return private_rebuild.peak_bytes();
}

}  // namespace analysis
}  // namespace pinpoint
