// lint-fixture-path: src/sim/good_clock.cc
// Fixture: must lint clean. Member functions named time
// (view.time(i) and the declaration TimeNs time(size_t)) are not
// the libc wall clock, and steady_clock is the sanctioned way to
// measure host wall time of a run.
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace pinpoint {
namespace sim {

class EventColumn
{
  public:
    std::uint64_t time(std::size_t i) const { return time_[i]; }

  private:
    const std::uint64_t *time_ = nullptr;
};

double
measure_wall_seconds()
{
    const auto start = std::chrono::steady_clock::now();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

}  // namespace sim
}  // namespace pinpoint
