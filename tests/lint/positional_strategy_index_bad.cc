// lint-fixture-path: bench/rogue_strategies.cpp
// Fixture: MUST trigger [positional-strategy-index]. "Slot 2 is
// hybrid" was true until PR 6 inserted kPeerOnly there; positional
// reads silently retarget when the enum grows.
#include "relief/strategy_planner.h"

namespace pinpoint {

std::size_t
rogue_hybrid_savings(const relief::StrategyPlanner &planner,
                     const analysis::TraceView &view)
{
    const auto reports = planner.plan_all(view);
    return reports[2].peak_reduction_bytes;  // violation
}

std::size_t
rogue_ref_binding(const api::Study &study)
{
    // Reference bindings (no space after &) must be tracked too.
    const auto &reports = study.relief_all();
    return reports[3].overhead_ns;  // violation
}

}  // namespace pinpoint
