#include "a/y.h"

namespace b {
a::Y make_y();
}  // namespace b
