namespace a {
int value;
}  // namespace a
