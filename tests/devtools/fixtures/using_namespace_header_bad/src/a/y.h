#pragma once

namespace a {
using namespace std;
struct Y {
};
}  // namespace a
