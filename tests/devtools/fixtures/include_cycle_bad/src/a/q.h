#pragma once

#include "a/p.h"

namespace a {
struct Q {
    P *p = nullptr;
};
}  // namespace a
