#ifndef FIXTURE_A_Y_H
#define FIXTURE_A_Y_H

namespace a {
struct Y {
};
}  // namespace a

#endif  // FIXTURE_A_Y_H
