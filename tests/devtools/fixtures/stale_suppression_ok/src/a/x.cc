namespace a {
int values[4];
int third_value = values[2];  // lint: allow(positional-strategy-index)
}  // namespace a
