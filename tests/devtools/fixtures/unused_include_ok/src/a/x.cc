#include "a/all.h"

namespace a {
Y make_y();
}  // namespace a
