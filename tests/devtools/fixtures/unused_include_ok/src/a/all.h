#pragma once

#include "a/y.h"
