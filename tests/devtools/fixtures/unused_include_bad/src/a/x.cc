#include "a/y.h"

namespace a {
int value;
}  // namespace a
