#pragma once

#include "a/q.h"

namespace a {
struct P {
    Q *q = nullptr;
};
}  // namespace a
