#pragma once

namespace a {
struct Q {
};
}  // namespace a
