#pragma once

namespace a {
struct Y {
};
}  // namespace a
