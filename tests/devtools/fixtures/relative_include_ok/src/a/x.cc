#include "a/y.h"

namespace a {
Y make_y();
}  // namespace a
