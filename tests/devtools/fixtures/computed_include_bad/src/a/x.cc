#define FIXTURE_HEADER "a/y.h"
#include FIXTURE_HEADER

namespace a {
int value;
}  // namespace a
