#pragma once

#include "a/deep.h"

namespace a {
struct Mid {
    Deep deep;
};
}  // namespace a
