#pragma once

namespace b {
struct Y {
};
}  // namespace b
