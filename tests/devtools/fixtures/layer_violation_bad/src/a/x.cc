#include "b/y.h"

namespace a {
b::Y make_y();
}  // namespace a
