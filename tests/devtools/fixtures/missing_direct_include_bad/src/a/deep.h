#pragma once

namespace a {
struct Deep {
};
}  // namespace a
