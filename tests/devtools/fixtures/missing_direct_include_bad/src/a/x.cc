#include "a/mid.h"

namespace a {
Mid make_mid();
Deep make_deep();
}  // namespace a
