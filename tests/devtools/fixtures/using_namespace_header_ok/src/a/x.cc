using namespace std;

namespace a {
int value;
}  // namespace a
