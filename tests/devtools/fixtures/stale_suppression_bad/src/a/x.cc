namespace a {
int plain_value = 0;  // lint: allow(positional-strategy-index)
}  // namespace a
