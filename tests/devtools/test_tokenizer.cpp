/**
 * @file
 * Scanner/tokenizer coverage for the lexical shapes a regex-based
 * tool gets wrong: raw strings, line continuations, comment markers
 * inside strings, and the three #include forms.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "devtools/tokenizer.h"

namespace pinpoint {
namespace devtools {
namespace {

TEST(Tokenizer, MasksPlainStringsAndComments)
{
    const ScanResult scan = scan_source(
        "int a = 1; // trailing words\n"
        "const char *s = \"quoted text\";\n"
        "/* block */ int b = 2;\n");
    EXPECT_EQ(scan.masked.find("trailing"), std::string::npos);
    EXPECT_EQ(scan.masked.find("quoted"), std::string::npos);
    EXPECT_EQ(scan.masked.find("block"), std::string::npos);
    EXPECT_NE(scan.masked.find("int a = 1;"), std::string::npos);
    EXPECT_NE(scan.masked.find("int b = 2;"), std::string::npos);
}

TEST(Tokenizer, RawStringWithCustomDelimiter)
{
    // The inner )" must not end the raw string; the delimiter is
    // xx. A naive scanner would resume inside the literal.
    const ScanResult scan = scan_source(
        "const char *s = R\"xx(body with \" and )\" inside)xx\";\n"
        "int after = 1;\n");
    EXPECT_EQ(scan.masked.find("body"), std::string::npos);
    EXPECT_EQ(scan.masked.find("inside"), std::string::npos);
    EXPECT_NE(scan.masked.find("int after = 1;"),
              std::string::npos);
}

TEST(Tokenizer, RawStringEncodingPrefixes)
{
    const ScanResult scan = scan_source(
        "auto a = u8R\"(hidden8)\";\n"
        "auto b = LR\"(hiddenL)\";\n"
        "int R = 3;  // plain identifier R is not a prefix\n");
    EXPECT_EQ(scan.masked.find("hidden8"), std::string::npos);
    EXPECT_EQ(scan.masked.find("hiddenL"), std::string::npos);
    EXPECT_NE(scan.masked.find("int R = 3;"), std::string::npos);
}

TEST(Tokenizer, LineContinuationExtendsLineComment)
{
    // The backslash-newline glues the second line into the
    // comment; `int hidden` must be masked.
    const ScanResult scan = scan_source(
        "// comment with continuation \\\n"
        "int hidden = 1;\n"
        "int visible = 2;\n");
    EXPECT_EQ(scan.masked.find("hidden"), std::string::npos);
    EXPECT_NE(scan.masked.find("int visible = 2;"),
              std::string::npos);
    // Line numbers survive: `visible` is still on line 3.
    const std::vector<Token> tokens = tokenize(scan.masked);
    for (const Token &t : tokens) {
        if (t.text == "visible") {
            EXPECT_EQ(t.line, 3);
        }
    }
}

TEST(Tokenizer, BlockCommentOpenerInsideString)
{
    // The /* inside the literal must not start a comment.
    const ScanResult scan = scan_source(
        "const char *s = \"not /* a comment\";\n"
        "int live = 1;\n");
    EXPECT_NE(scan.masked.find("int live = 1;"),
              std::string::npos);
}

TEST(Tokenizer, DigitSeparatorIsNotACharLiteral)
{
    const ScanResult scan =
        scan_source("long big = 1'000'000;\nint next = 2;\n");
    const std::vector<Token> tokens = tokenize(scan.masked);
    bool found = false;
    for (const Token &t : tokens)
        if (t.kind == TokenKind::kNumber &&
            t.text == "1'000'000")
            found = true;
    EXPECT_TRUE(found);
    EXPECT_NE(scan.masked.find("int next = 2;"),
              std::string::npos);
}

TEST(Tokenizer, CharLiteralIsMasked)
{
    const ScanResult scan =
        scan_source("char c = 'x';\nchar d = '\\'';\nint z = 1;\n");
    EXPECT_EQ(scan.masked.find('x'), std::string::npos);
    EXPECT_NE(scan.masked.find("int z = 1;"), std::string::npos);
}

TEST(Tokenizer, IncludeFormsAreClassified)
{
    const ScanResult scan = scan_source(
        "#include <vector>\n"
        "#include \"core/types.h\"\n"
        "#define HDR \"core/shape.h\"\n"
        "#include HDR\n");
    ASSERT_EQ(scan.includes.size(), 3u);
    EXPECT_EQ(scan.includes[0].kind,
              IncludeDirective::Kind::kAngle);
    EXPECT_EQ(scan.includes[0].path, "vector");
    EXPECT_EQ(scan.includes[0].line, 1);
    EXPECT_EQ(scan.includes[1].kind,
              IncludeDirective::Kind::kQuote);
    EXPECT_EQ(scan.includes[1].path, "core/types.h");
    // The computed form is surfaced, never silently dropped.
    EXPECT_EQ(scan.includes[2].kind,
              IncludeDirective::Kind::kComputed);
    EXPECT_EQ(scan.includes[2].path, "HDR");
    EXPECT_EQ(scan.includes[2].line, 4);
    ASSERT_EQ(scan.defines.size(), 1u);
    EXPECT_EQ(scan.defines[0].name, "HDR");
}

TEST(Tokenizer, IncludePathsDoNotLeakIntoMaskedText)
{
    const ScanResult scan =
        scan_source("#include \"core/types.h\"\nint x = 1;\n");
    // The directive line is masked so "types" never counts as a
    // referenced identifier.
    EXPECT_EQ(scan.masked.find("types"), std::string::npos);
}

TEST(Tokenizer, PragmaOnceDetected)
{
    EXPECT_TRUE(scan_source("#pragma once\nint x;\n")
                    .has_pragma_once);
    EXPECT_FALSE(scan_source("#pragma pack(1)\nint x;\n")
                     .has_pragma_once);
    EXPECT_FALSE(scan_source("int x;\n").has_pragma_once);
}

TEST(Tokenizer, SuppressionCommentsParsed)
{
    const ScanResult scan = scan_source(
        // The literal is split so the Python linter (which reads
        // raw lines) does not take this test input for a real
        // suppression comment.
        "int a = v[0];  // lint"
        ": allow(positional-strategy-index)\n"
        "// analyze: allow(unused-include, pragma-once)\n"
        "int b = 0;\n");
    ASSERT_EQ(scan.suppressions.size(), 2u);
    EXPECT_EQ(scan.suppressions[0].tool, "lint");
    EXPECT_FALSE(scan.suppressions[0].standalone);
    ASSERT_EQ(scan.suppressions[0].ids.size(), 1u);
    EXPECT_EQ(scan.suppressions[0].ids[0],
              "positional-strategy-index");
    EXPECT_EQ(scan.suppressions[1].tool, "analyze");
    EXPECT_TRUE(scan.suppressions[1].standalone);
    ASSERT_EQ(scan.suppressions[1].ids.size(), 2u);
}

TEST(Tokenizer, ProseAllowMentionIsNotASuppression)
{
    // Doc comments talking about the syntax (ids outside [\w,-])
    // must not register as suppressions.
    const ScanResult scan = scan_source(
        "// write lint: allow(<rule>) to suppress\n"
        "// or analyze: allow(...) for analyzer checks\n"
        "int x = 0;\n");
    EXPECT_TRUE(scan.suppressions.empty());
}

TEST(Tokenizer, HashInsideDirectiveBodyIsNotADirective)
{
    const ScanResult scan =
        scan_source("#define CAT(a, b) a##b\nint x = 0;\n");
    ASSERT_EQ(scan.defines.size(), 1u);
    EXPECT_EQ(scan.defines[0].name, "CAT");
    EXPECT_TRUE(scan.includes.empty());
}

TEST(Tokenizer, SplitLinesKeepsLineNumbersStable)
{
    const std::vector<std::string> lines =
        split_lines("a\nb\n\nc");
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], "a");
    EXPECT_EQ(lines[2], "");
    EXPECT_EQ(lines[3], "c");
}

}  // namespace
}  // namespace devtools
}  // namespace pinpoint
