/**
 * @file
 * Layer-table parser coverage: the DAG-by-construction property,
 * error reporting with line numbers, and path-to-layer mapping.
 */
#include <gtest/gtest.h>

#include <string>

#include "core/check.h"
#include "devtools/layering.h"

namespace pinpoint {
namespace devtools {
namespace {

TEST(LayerTable, ParsesLayersInOrder)
{
    const LayerTable t = LayerTable::parse(
        "# comment\n"
        "layer core:\n"
        "layer trace: core\n"
        "layer runtime: core trace\n"
        "umbrella src/nn/all.h\n");
    ASSERT_EQ(t.layers().size(), 3u);
    EXPECT_EQ(t.layers()[0].name, "core");
    EXPECT_EQ(t.layers()[2].name, "runtime");
    EXPECT_EQ(t.layers()[2].line, 4);
    EXPECT_TRUE(t.allows("trace", "core"));
    EXPECT_TRUE(t.allows("runtime", "trace"));
    EXPECT_FALSE(t.allows("core", "trace"));
    EXPECT_TRUE(t.allows("core", "core"));
    EXPECT_TRUE(t.is_upward("core", "runtime"));
    EXPECT_FALSE(t.is_upward("runtime", "core"));
    EXPECT_EQ(t.umbrellas().count("src/nn/all.h"), 1u);
}

TEST(LayerTable, ForwardDependencyIsAParseError)
{
    // The dep names a layer declared later — a cycle cannot even
    // be written down.
    try {
        LayerTable::parse("layer a: b\nlayer b: a\n");
        FAIL() << "expected Error";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("layering.txt:1"), std::string::npos);
        EXPECT_NE(what.find("not declared above"),
                  std::string::npos);
    }
}

TEST(LayerTable, DuplicateLayerIsAParseError)
{
    EXPECT_THROW(LayerTable::parse("layer a:\nlayer a:\n"),
                 Error);
}

TEST(LayerTable, MissingColonIsAParseError)
{
    EXPECT_THROW(LayerTable::parse("layer a\n"), Error);
}

TEST(LayerTable, LayerOfMapsPaths)
{
    EXPECT_EQ(LayerTable::layer_of("src/core/types.h"), "core");
    EXPECT_EQ(LayerTable::layer_of("src/nn/models/vgg.cc"), "nn");
    EXPECT_EQ(LayerTable::layer_of("tools/pinpoint_cli.cc"), "");
    EXPECT_EQ(LayerTable::layer_of("bench/bench_util.h"), "");
    EXPECT_EQ(LayerTable::layer_of("src/loose_file.cc"), "");
}

}  // namespace
}  // namespace devtools
}  // namespace pinpoint
