/**
 * @file
 * Symbol-index coverage: which names a header is credited with
 * declaring, and which `using namespace` directives sit at
 * namespace scope.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "devtools/symbol_index.h"
#include "devtools/tokenizer.h"

namespace pinpoint {
namespace devtools {
namespace {

SymbolInfo
index_of(const char *text)
{
    return index_symbols(scan_source(text));
}

TEST(SymbolIndex, RecordsTopLevelDeclarations)
{
    const SymbolInfo info = index_of(
        "namespace pp {\n"
        "struct Block {\n"
        "    int inner_field = 0;\n"
        "};\n"
        "class Timeline;\n"
        "enum class Mode { kFast, kSlow };\n"
        "enum Flags { kRead, kWrite };\n"
        "using Alias = Block;\n"
        "typedef int BlockId;\n"
        "void build_timeline(int n);\n"
        "int peak_bytes;\n"
        "}  // namespace pp\n");
    const std::set<std::string> &d = info.declared;
    EXPECT_TRUE(d.count("Block"));
    EXPECT_TRUE(d.count("Timeline"));
    EXPECT_TRUE(d.count("Mode"));
    EXPECT_TRUE(d.count("Flags"));
    // Unscoped enumerators are reachable bare; scoped are not.
    EXPECT_TRUE(d.count("kRead"));
    EXPECT_FALSE(d.count("kFast"));
    EXPECT_TRUE(d.count("Alias"));
    EXPECT_TRUE(d.count("BlockId"));
    EXPECT_TRUE(d.count("build_timeline"));
    EXPECT_TRUE(d.count("peak_bytes"));
    // Class members are reached through the class name only.
    EXPECT_FALSE(d.count("inner_field"));
}

TEST(SymbolIndex, IgnoresFunctionBodies)
{
    const SymbolInfo info = index_of(
        "void outer()\n"
        "{\n"
        "    int local = 1;\n"
        "    struct Nested {\n"
        "    };\n"
        "}\n");
    EXPECT_TRUE(info.declared.count("outer"));
    EXPECT_FALSE(info.declared.count("local"));
    EXPECT_FALSE(info.declared.count("Nested"));
}

TEST(SymbolIndex, DefineNamesAreDeclared)
{
    const SymbolInfo info =
        index_of("#define PP_CHECK(c) ((void)0)\n");
    EXPECT_TRUE(info.declared.count("PP_CHECK"));
}

TEST(SymbolIndex, UsingNamespaceOnlyAtNamespaceScope)
{
    const SymbolInfo top = index_of("using namespace std;\n");
    ASSERT_EQ(top.using_namespace.size(), 1u);
    EXPECT_EQ(top.using_namespace[0].name, "std");
    EXPECT_EQ(top.using_namespace[0].line, 1);

    const SymbolInfo inside = index_of(
        "inline void f()\n"
        "{\n"
        "    using namespace std;\n"
        "}\n");
    EXPECT_TRUE(inside.using_namespace.empty());
}

TEST(SymbolIndex, TemplatesAndSpecializations)
{
    const SymbolInfo info = index_of(
        "template <typename T>\n"
        "struct Slot {\n"
        "};\n"
        "template <>\n"
        "struct Slot<int> {\n"
        "};\n"
        "template <typename T>\n"
        "T clamp_value(T v);\n");
    EXPECT_TRUE(info.declared.count("Slot"));
    EXPECT_TRUE(info.declared.count("clamp_value"));
    EXPECT_FALSE(info.declared.count("T"));
}

TEST(SymbolIndex, ReferencedIdentifiersSkipKeywords)
{
    const std::set<std::string> refs = referenced_identifiers(
        scan_source("for (int i = 0; i < n; ++i) total += i;\n"));
    EXPECT_TRUE(refs.count("n"));
    EXPECT_TRUE(refs.count("total"));
    EXPECT_FALSE(refs.count("for"));
    EXPECT_FALSE(refs.count("int"));
}

TEST(SymbolIndex, InitializersDoNotDeclareTheirContents)
{
    const SymbolInfo info =
        index_of("int answer = other_value + helper(3);\n");
    EXPECT_TRUE(info.declared.count("answer"));
    EXPECT_FALSE(info.declared.count("other_value"));
    EXPECT_FALSE(info.declared.count("helper"));
}

}  // namespace
}  // namespace devtools
}  // namespace pinpoint
