/** @file Unit tests for the automatic swap planner. */
#include <gtest/gtest.h>

#include "analysis/swap_model.h"
#include "core/check.h"
#include "analysis/trace_view.h"
#include "swap/planner.h"

namespace pinpoint {
namespace swap {
namespace {

const analysis::LinkBandwidth kLink{6.4e9, 6.3e9};

trace::MemoryEvent
ev(TimeNs t, trace::EventKind kind, BlockId block, std::size_t size)
{
    trace::MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = size;
    return e;
}

/** Block with one huge internal access gap (the Fig. 4 outlier). */
trace::TraceRecorder
outlier_trace()
{
    trace::TraceRecorder r;
    const std::size_t size = 1200ull * 1024 * 1024;
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    r.record(ev(840211 * kNsPerUs, trace::EventKind::kRead, 1, size));
    r.record(ev(840300 * kNsPerUs, trace::EventKind::kFree, 1, size));
    return r;
}

PlannerOptions
default_options()
{
    PlannerOptions o;
    o.link = kLink;
    return o;
}

TEST(SwapPlanner, SchedulesTheOutlier)
{
    SwapPlanner planner(default_options());
    const auto plan = planner.plan(analysis::TraceView(outlier_trace()));
    ASSERT_EQ(plan.decisions.size(), 1u);
    const auto &d = plan.decisions[0];
    EXPECT_EQ(d.block, 1u);
    EXPECT_EQ(d.gap_start, 10u);
    EXPECT_EQ(d.gap_end, 840211 * kNsPerUs);
    EXPECT_GT(d.hide_ratio, 1.0);
    EXPECT_EQ(d.overhead, 0u);
    EXPECT_EQ(plan.predicted_overhead, 0u);
    EXPECT_EQ(plan.total_swapped_bytes, 1200ull * 1024 * 1024);
}

TEST(SwapPlanner, PeakReductionCountsResidencyWindowGaps)
{
    // The peak instant must fall inside the *residency window* —
    // after the swap-out transfer completes (~197 ms for 1200 MB at
    // 6.4 GB/s) and before the swap-in starts (~640 ms) — which a
    // transient block at 400 ms arranges.
    trace::TraceRecorder r;
    const std::size_t big = 1200ull * 1024 * 1024;
    const std::size_t small = 100ull * 1024 * 1024;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(400 * kNsPerMs, trace::EventKind::kMalloc, 2, small));
    r.record(ev(401 * kNsPerMs, trace::EventKind::kFree, 2, small));
    r.record(ev(840211 * kNsPerUs, trace::EventKind::kRead, 1, big));
    r.record(ev(840300 * kNsPerUs, trace::EventKind::kFree, 1, big));

    SwapPlanner planner(default_options());
    const auto plan = planner.plan(analysis::TraceView(r));
    EXPECT_EQ(plan.original_peak_bytes, big + small);
    EXPECT_EQ(plan.peak_reduction_bytes, big)
        << "the big block is off-device at the peak instant";
}

TEST(SwapPlanner, NoPeakReductionWhilePeakSitsInsideTransfer)
{
    // Same trace but the transient peaks at 1 ms — while the big
    // block's swap-out is still on the wire, so the block is still
    // resident and crediting its size would be optimistic (the old
    // raw-gap test credited it from anywhere in the gap).
    trace::TraceRecorder r;
    const std::size_t big = 1200ull * 1024 * 1024;
    const std::size_t small = 100ull * 1024 * 1024;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(kNsPerMs, trace::EventKind::kMalloc, 2, small));
    r.record(ev(2 * kNsPerMs, trace::EventKind::kFree, 2, small));
    r.record(ev(840211 * kNsPerUs, trace::EventKind::kRead, 1, big));
    r.record(ev(840300 * kNsPerUs, trace::EventKind::kFree, 1, big));

    const auto plan =
        SwapPlanner(default_options()).plan(analysis::TraceView(r));
    EXPECT_EQ(plan.original_peak_bytes, big + small);
    EXPECT_EQ(plan.peak_reduction_bytes, 0u)
        << "the swap-out has not completed at the peak instant";
}

TEST(SwapPlanner, NoPeakReductionWhenPeakIsOutsideGaps)
{
    SwapPlanner planner(default_options());
    const auto plan = planner.plan(analysis::TraceView(outlier_trace()));
    // Single-block trace: the peak is the alloc instant, which
    // precedes the first access, so nothing is off-device there.
    EXPECT_EQ(plan.original_peak_bytes, 1200ull * 1024 * 1024);
    EXPECT_EQ(plan.peak_reduction_bytes, 0u);
}

TEST(SwapPlanner, SmallBlocksAreIgnored)
{
    trace::TraceRecorder r;
    r.record(ev(0, trace::EventKind::kMalloc, 1, 4096));
    r.record(ev(10, trace::EventKind::kWrite, 1, 4096));
    r.record(ev(kNsPerSec, trace::EventKind::kRead, 1, 4096));
    SwapPlanner planner(default_options());
    EXPECT_TRUE(planner.plan(analysis::TraceView(r)).decisions.empty());
}

TEST(SwapPlanner, TightGapsAreNotHideable)
{
    trace::TraceRecorder r;
    const std::size_t size = 64ull * 1024 * 1024;  // needs ~20 ms
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    r.record(ev(kNsPerMs, trace::EventKind::kRead, 1, size));
    SwapPlanner planner(default_options());
    EXPECT_TRUE(planner.plan(analysis::TraceView(r)).decisions.empty());
}

TEST(SwapPlanner, AllowOverheadSchedulesWithStall)
{
    trace::TraceRecorder r;
    const std::size_t size = 64ull * 1024 * 1024;
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    r.record(ev(10 * kNsPerMs, trace::EventKind::kRead, 1, size));

    PlannerOptions opts = default_options();
    opts.allow_overhead = true;
    const auto plan = SwapPlanner(opts).plan(analysis::TraceView(r));
    ASSERT_EQ(plan.decisions.size(), 1u);
    const TimeNs needed = analysis::min_interval_for(size, kLink);
    EXPECT_EQ(plan.decisions[0].overhead,
              needed - (10 * kNsPerMs - 10));
    EXPECT_EQ(plan.predicted_overhead, plan.decisions[0].overhead);
}

TEST(SwapPlanner, OverheadSaturatesAtZeroUnderSafetyFactor)
{
    // gap = 1.5 * needed: not hideable at safety 2.0, yet the raw
    // round trip fits (needed <= gap). With allow_overhead the
    // decision is still scheduled and its overhead must clamp to 0
    // — the seed computed needed - gap, wrapping the unsigned
    // TimeNs to ~2^64 and corrupting predicted_overhead.
    trace::TraceRecorder r;
    const std::size_t size = 100ull * 1024 * 1024;
    const TimeNs needed = analysis::min_interval_for(size, kLink);
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    r.record(ev(10 + needed * 3 / 2, trace::EventKind::kRead, 1,
                size));

    PlannerOptions opts = default_options();
    opts.safety_factor = 2.0;
    opts.allow_overhead = true;
    const auto plan = SwapPlanner(opts).plan(analysis::TraceView(r));
    ASSERT_EQ(plan.decisions.size(), 1u);
    EXPECT_EQ(plan.decisions[0].overhead, 0u);
    EXPECT_EQ(plan.predicted_overhead, 0u);
}

TEST(SwapPlanner, SafetyFactorTightensTheBound)
{
    trace::TraceRecorder r;
    const std::size_t size = 100ull * 1024 * 1024;
    const TimeNs needed = analysis::min_interval_for(size, kLink);
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    // Gap of 1.5x the bound: fine at safety 1.0, rejected at 2.0.
    r.record(ev(10 + needed * 3 / 2, trace::EventKind::kRead, 1,
                size));

    PlannerOptions loose = default_options();
    EXPECT_EQ(SwapPlanner(loose)
                  .plan(analysis::TraceView(r))
                  .decisions.size(),
              1u);
    PlannerOptions strict = default_options();
    strict.safety_factor = 2.0;
    EXPECT_TRUE(SwapPlanner(strict)
                    .plan(analysis::TraceView(r))
                    .decisions.empty());
}

TEST(SwapPlanner, MultipleGapsYieldMultipleDecisions)
{
    trace::TraceRecorder r;
    const std::size_t size = 16ull * 1024 * 1024;
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    r.record(ev(kNsPerSec, trace::EventKind::kRead, 1, size));
    r.record(ev(2 * kNsPerSec, trace::EventKind::kRead, 1, size));
    const auto plan =
        SwapPlanner(default_options()).plan(analysis::TraceView(r));
    EXPECT_EQ(plan.decisions.size(), 2u);
    EXPECT_EQ(plan.total_swapped_bytes, 2 * size);
    // Decisions come out sorted by gap start.
    EXPECT_LT(plan.decisions[0].gap_start,
              plan.decisions[1].gap_start);
}

TEST(SwapPlanner, GapsBeforeFirstAccessDoNotQualify)
{
    trace::TraceRecorder r;
    const std::size_t size = 100ull * 1024 * 1024;
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    // One access only, a second after allocation: no internal gap.
    r.record(ev(kNsPerSec, trace::EventKind::kWrite, 1, size));
    EXPECT_TRUE(SwapPlanner(default_options())
                    .plan(analysis::TraceView(r))
                    .decisions.empty());
}

TEST(SwapPlanner, ValidatesOptions)
{
    PlannerOptions bad_link;
    EXPECT_THROW(SwapPlanner{bad_link}, Error);
    PlannerOptions bad_safety = default_options();
    bad_safety.safety_factor = 0.5;
    EXPECT_THROW(SwapPlanner{bad_safety}, Error);
}

}  // namespace
}  // namespace swap
}  // namespace pinpoint
