/** @file Unit tests for the swap executor. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/models.h"
#include "runtime/session.h"
#include "swap/executor.h"

namespace pinpoint {
namespace swap {
namespace {

const analysis::LinkBandwidth kLink{6.4e9, 6.3e9};

trace::MemoryEvent
ev(TimeNs t, trace::EventKind kind, BlockId block, std::size_t size)
{
    trace::MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = size;
    return e;
}

/** Big block with a 1 s gap, plus a transient block mid-gap. */
trace::TraceRecorder
gap_trace(std::size_t big = 512ull << 20)
{
    trace::TraceRecorder r;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(400 * kNsPerMs, trace::EventKind::kMalloc, 2,
                64ull << 20));
    r.record(ev(500 * kNsPerMs, trace::EventKind::kFree, 2,
                64ull << 20));
    r.record(ev(kNsPerSec, trace::EventKind::kRead, 1, big));
    r.record(ev(kNsPerSec + 10, trace::EventKind::kFree, 1, big));
    return r;
}

TEST(SwapExecutor, HideableSwapReducesPeakWithNoStall)
{
    const auto trace = gap_trace();
    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(trace);
    ASSERT_EQ(plan.decisions.size(), 1u);

    const auto exec = execute_plan(trace, plan, kLink);
    EXPECT_EQ(exec.executed_decisions, 1u);
    EXPECT_EQ(exec.measured_stall, 0u);
    EXPECT_EQ(exec.original_peak_bytes, (512ull + 64ull) << 20);
    // At the old peak instant the big block is off-device.
    EXPECT_EQ(exec.new_peak_bytes, 512ull << 20)
        << "peak moves to the big block's resident phase";
    EXPECT_EQ(exec.measured_peak_reduction, 64ull << 20);
    EXPECT_EQ(exec.d2h_bytes, 512ull << 20);
    EXPECT_EQ(exec.h2d_bytes, 512ull << 20);
    EXPECT_GT(exec.transfer_time, 100 * kNsPerMs);
}

TEST(SwapExecutor, ExecutorConfirmsPlannerPeakPrediction)
{
    const auto trace = gap_trace();
    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(trace);
    const auto exec = execute_plan(trace, plan, kLink);
    // The planner predicted reduction at the original peak instant;
    // the executor's measured reduction must be at least that once
    // transfer edges are accounted for.
    EXPECT_EQ(plan.original_peak_bytes, exec.original_peak_bytes);
    EXPECT_GE(exec.measured_peak_reduction, 0u);
    EXPECT_LE(exec.new_peak_bytes, exec.original_peak_bytes);
}

TEST(SwapExecutor, NonHideableSwapMeasuresStall)
{
    // 512 MB with only a 100 ms gap: round trip needs ~170 ms.
    trace::TraceRecorder r;
    const std::size_t big = 512ull << 20;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(100 * kNsPerMs, trace::EventKind::kRead, 1, big));

    PlannerOptions opts;
    opts.link = kLink;
    opts.allow_overhead = true;
    const auto plan = SwapPlanner(opts).plan(r);
    ASSERT_EQ(plan.decisions.size(), 1u);
    const auto exec = execute_plan(r, plan, kLink);
    EXPECT_GT(exec.measured_stall, 0u);
    // Executor and planner agree on the stall to the nanosecond.
    EXPECT_EQ(exec.measured_stall, plan.predicted_overhead);
}

TEST(SwapExecutor, EmptyPlanChangesNothing)
{
    const auto trace = gap_trace();
    SwapPlanReport empty;
    const auto exec = execute_plan(trace, empty, kLink);
    EXPECT_EQ(exec.executed_decisions, 0u);
    EXPECT_EQ(exec.new_peak_bytes, exec.original_peak_bytes);
    EXPECT_EQ(exec.measured_peak_reduction, 0u);
    EXPECT_EQ(exec.transfer_time, 0u);
}

TEST(SwapExecutor, RejectsForeignDecisions)
{
    const auto trace = gap_trace();
    SwapPlanReport bogus;
    SwapDecision d;
    d.block = 999;
    d.size = 1024;
    d.gap_start = 10;
    d.gap_end = 20;
    bogus.decisions.push_back(d);
    EXPECT_THROW(execute_plan(trace, bogus, kLink), Error);

    SwapPlanReport misaligned;
    d.block = 1;
    d.size = 512ull << 20;
    d.gap_start = 11;  // not an access timestamp
    d.gap_end = kNsPerSec;
    misaligned.decisions.push_back(d);
    EXPECT_THROW(execute_plan(trace, misaligned, kLink), Error);
}

TEST(SwapExecutor, EndToEndOnRealTrainingTrace)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = 3;
    const auto result = runtime::run_training(nn::resnet(18), config);

    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(result.trace);
    const auto exec = execute_plan(result.trace, plan, kLink);
    EXPECT_EQ(exec.executed_decisions, plan.decisions.size());
    EXPECT_EQ(exec.measured_stall, 0u) << "hideable-only plan";
    EXPECT_LE(exec.new_peak_bytes, exec.original_peak_bytes);
    if (!plan.decisions.empty()) {
        EXPECT_GT(exec.measured_peak_reduction, 0u);
    }
}

}  // namespace
}  // namespace swap
}  // namespace pinpoint
