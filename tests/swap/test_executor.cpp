/** @file Unit tests for the swap executor. */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/models.h"
#include "runtime/session.h"
#include "swap/executor.h"

namespace pinpoint {
namespace swap {
namespace {

const analysis::LinkBandwidth kLink{6.4e9, 6.3e9};

trace::MemoryEvent
ev(TimeNs t, trace::EventKind kind, BlockId block, std::size_t size)
{
    trace::MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = size;
    return e;
}

/** Big block with a 1 s gap, plus a transient block mid-gap. */
trace::TraceRecorder
gap_trace(std::size_t big = 512ull << 20)
{
    trace::TraceRecorder r;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(400 * kNsPerMs, trace::EventKind::kMalloc, 2,
                64ull << 20));
    r.record(ev(500 * kNsPerMs, trace::EventKind::kFree, 2,
                64ull << 20));
    r.record(ev(kNsPerSec, trace::EventKind::kRead, 1, big));
    r.record(ev(kNsPerSec + 10, trace::EventKind::kFree, 1, big));
    return r;
}

TEST(SwapExecutor, HideableSwapReducesPeakWithNoStall)
{
    const analysis::TraceView trace(gap_trace());
    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(trace);
    ASSERT_EQ(plan.decisions.size(), 1u);

    const auto exec = execute_plan(trace, plan, kLink);
    EXPECT_EQ(exec.executed_decisions, 1u);
    EXPECT_EQ(exec.measured_stall, 0u);
    EXPECT_EQ(exec.original_peak_bytes, (512ull + 64ull) << 20);
    // At the old peak instant the big block is off-device.
    EXPECT_EQ(exec.new_peak_bytes, 512ull << 20)
        << "peak moves to the big block's resident phase";
    EXPECT_EQ(exec.measured_peak_reduction, 64ull << 20);
    EXPECT_EQ(exec.d2h_bytes, 512ull << 20);
    EXPECT_EQ(exec.h2d_bytes, 512ull << 20);
    EXPECT_GT(exec.transfer_time, 100 * kNsPerMs);
}

TEST(SwapExecutor, ExecutorConfirmsPlannerPeakPrediction)
{
    const analysis::TraceView trace(gap_trace());
    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(trace);
    const auto exec = execute_plan(trace, plan, kLink);
    // The planner predicted reduction at the original peak instant;
    // the executor's measured reduction must be at least that once
    // transfer edges are accounted for.
    EXPECT_EQ(plan.original_peak_bytes, exec.original_peak_bytes);
    EXPECT_GE(exec.measured_peak_reduction, 0u);
    EXPECT_LE(exec.new_peak_bytes, exec.original_peak_bytes);
}

TEST(SwapExecutor, NonHideableSwapMeasuresStall)
{
    // 512 MB with only a 100 ms gap: round trip needs ~170 ms.
    trace::TraceRecorder r;
    const std::size_t big = 512ull << 20;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(100 * kNsPerMs, trace::EventKind::kRead, 1, big));

    PlannerOptions opts;
    opts.link = kLink;
    opts.allow_overhead = true;
    const analysis::TraceView view(r);
    const auto plan = SwapPlanner(opts).plan(view);
    ASSERT_EQ(plan.decisions.size(), 1u);
    const auto exec = execute_plan(view, plan, kLink);
    EXPECT_GT(exec.measured_stall, 0u);
    // Executor and planner agree on the stall to the nanosecond.
    EXPECT_EQ(exec.measured_stall, plan.predicted_overhead);
}

TEST(SwapExecutor, ExactlyHideableGapHasNoSpuriousStall)
{
    // An odd size forces fractional per-leg transfer times. The gap
    // equals min_interval_for exactly; with the planner and the
    // executor on one per-leg rounding helper this is stall-free —
    // the seed ceiled the summed round trip in the planner but each
    // leg separately in the executor, reporting a spurious 1 ns
    // stall on gaps like this one.
    trace::TraceRecorder r;
    const std::size_t size = 333333333;
    const TimeNs needed = analysis::min_interval_for(size, kLink);
    r.record(ev(0, trace::EventKind::kMalloc, 1, size));
    r.record(ev(10, trace::EventKind::kWrite, 1, size));
    r.record(ev(10 + needed, trace::EventKind::kRead, 1, size));

    PlannerOptions opts;
    opts.link = kLink;
    const analysis::TraceView view(r);
    const auto plan = SwapPlanner(opts).plan(view);
    ASSERT_EQ(plan.decisions.size(), 1u);
    EXPECT_EQ(plan.decisions[0].overhead, 0u);
    const auto exec = execute_plan(view, plan, kLink);
    EXPECT_EQ(exec.measured_stall, 0u)
        << "planner and executor disagree on rounding";
}

TEST(SwapExecutor, ContendedSwapsStallOnTheSharedLink)
{
    // Two 512 MB blocks share one 200 ms gap. Each round trip needs
    // ~161 ms — hideable in isolation — but the two D2H copies
    // serialize on the shared link (~80 ms each) and so do the two
    // H2D copies (~81 ms each), so the second swap-in cannot finish
    // by the gap end. The seed's dedicated-link executor reported
    // zero stall here.
    trace::TraceRecorder r;
    const std::size_t big = 512ull << 20;
    const TimeNs gap_end = 200 * kNsPerMs;
    r.record(ev(0, trace::EventKind::kMalloc, 1, big));
    r.record(ev(0, trace::EventKind::kMalloc, 2, big));
    r.record(ev(10, trace::EventKind::kWrite, 1, big));
    r.record(ev(10, trace::EventKind::kWrite, 2, big));
    r.record(ev(gap_end, trace::EventKind::kRead, 1, big));
    r.record(ev(gap_end, trace::EventKind::kRead, 2, big));
    r.record(ev(gap_end + 10, trace::EventKind::kFree, 1, big));
    r.record(ev(gap_end + 10, trace::EventKind::kFree, 2, big));

    PlannerOptions opts;
    opts.link = kLink;
    const analysis::TraceView view(r);
    const auto plan = SwapPlanner(opts).plan(view);
    ASSERT_EQ(plan.decisions.size(), 2u);
    EXPECT_EQ(plan.predicted_overhead, 0u)
        << "each swap is hideable in isolation";

    // Alone, either decision is stall-free.
    for (const auto &d : plan.decisions) {
        SwapPlanReport solo;
        solo.decisions.push_back(d);
        EXPECT_EQ(execute_plan(view, solo, kLink).measured_stall, 0u);
    }

    // Together they contend, and the slip is measured.
    const auto exec = execute_plan(view, plan, kLink);
    EXPECT_GT(exec.measured_stall, 0u)
        << "the shared link must surface contention stall";
    EXPECT_GT(exec.queue_delay, 0u);
    ASSERT_EQ(exec.swaps.size(), 2u);
    // FIFO: the first-queued swap hides; the second pays the slip.
    EXPECT_EQ(exec.swaps[0].stall, 0u);
    EXPECT_GT(exec.swaps[1].stall, 0u);
    // The second swap-out starts only when the first leaves the
    // D2H channel — scheduled, not ideal, edges.
    EXPECT_EQ(exec.swaps[1].out_start, exec.swaps[0].out_end);
    EXPECT_EQ(exec.swaps[1].in_start, exec.swaps[0].in_end);
}

TEST(SwapExecutor, SharedSchedulerAccumulatesAcrossPlans)
{
    const analysis::TraceView trace(gap_trace());
    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(trace);
    ASSERT_EQ(plan.decisions.size(), 1u);

    sim::LinkScheduler link(kLink.d2h_bps, kLink.h2d_bps);
    const auto first = execute_plan(trace, plan, link);
    EXPECT_EQ(first.measured_stall, 0u);
    // A second plan over the same window now queues behind the
    // first plan's traffic on the very same link.
    const auto second = execute_plan(trace, plan, link);
    EXPECT_GT(second.measured_stall, first.measured_stall);
    EXPECT_EQ(link.transfer_count(), 4u);
}

TEST(SwapExecutor, EmptyPlanChangesNothing)
{
    const analysis::TraceView trace(gap_trace());
    SwapPlanReport empty;
    const auto exec = execute_plan(trace, empty, kLink);
    EXPECT_EQ(exec.executed_decisions, 0u);
    EXPECT_EQ(exec.new_peak_bytes, exec.original_peak_bytes);
    EXPECT_EQ(exec.measured_peak_reduction, 0u);
    EXPECT_EQ(exec.transfer_time, 0u);
}

TEST(SwapExecutor, RejectsForeignDecisions)
{
    const analysis::TraceView trace(gap_trace());
    SwapPlanReport bogus;
    SwapDecision d;
    d.block = 999;
    d.size = 1024;
    d.gap_start = 10;
    d.gap_end = 20;
    bogus.decisions.push_back(d);
    EXPECT_THROW(execute_plan(trace, bogus, kLink), Error);

    SwapPlanReport misaligned;
    d.block = 1;
    d.size = 512ull << 20;
    d.gap_start = 11;  // not an access timestamp
    d.gap_end = kNsPerSec;
    misaligned.decisions.push_back(d);
    EXPECT_THROW(execute_plan(trace, misaligned, kLink), Error);
}

TEST(SwapExecutor, EndToEndOnRealTrainingTrace)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = 3;
    const auto result = runtime::run_training(nn::resnet(18), config);

    PlannerOptions opts;
    opts.link = kLink;
    const auto plan = SwapPlanner(opts).plan(result.view());
    const auto exec = execute_plan(result.view(), plan, kLink);
    EXPECT_EQ(exec.executed_decisions, plan.decisions.size());
    // A hideable-only plan can still stall on a real trace: the
    // decisions overlap and contend for the one link. What must
    // hold is that every stall is link slip, never more than the
    // time spent queued.
    EXPECT_GE(exec.measured_stall, plan.predicted_overhead);
    EXPECT_LE(exec.measured_stall, exec.queue_delay);
    EXPECT_LE(exec.new_peak_bytes, exec.original_peak_bytes);
    EXPECT_GE(exec.link_busy_fraction, 0.0);
    EXPECT_LE(exec.link_busy_fraction, 1.0);
    if (!plan.decisions.empty()) {
        EXPECT_GT(exec.measured_peak_reduction, 0u);
    }
}

}  // namespace
}  // namespace swap
}  // namespace pinpoint
