/**
 * @file
 * Planner ↔ executor agreement property test over the model-zoo
 * registry: every decision the planner emits must execute, plans
 * that are hideable in isolation must be stall-free on an
 * uncontended link, and shared-link (contended) execution must
 * never report *less* stall than the dedicated-link model did.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "nn/model_registry.h"
#include "runtime/session.h"
#include "swap/executor.h"
#include "swap/planner.h"

namespace pinpoint {
namespace swap {
namespace {

/** Per-model singleton executions are capped to bound test time. */
constexpr std::size_t kSoloChecksPerModel = 12;

PlannerOptions
paper_link_options()
{
    PlannerOptions opts;
    const auto spec = sim::DeviceSpec::titan_x_pascal();
    opts.link =
        analysis::LinkBandwidth{spec.d2h_bw_bps, spec.h2d_bw_bps};
    return opts;
}

TEST(PlanExecuteAgreement, EveryZooModelRoundTrips)
{
    for (const auto &entry : nn::model_registry()) {
        SCOPED_TRACE(entry.name);
        runtime::SessionConfig config;
        config.batch = 8;
        config.iterations = 2;
        const auto result =
            runtime::run_training(entry.build(), config);

        const PlannerOptions opts = paper_link_options();
        const auto plan = SwapPlanner(opts).plan(result.view());

        // Every plan() decision passes execute_plan validation.
        const auto exec =
            execute_plan(result.view(), plan, opts.link);
        ASSERT_EQ(exec.executed_decisions, plan.decisions.size());
        ASSERT_EQ(exec.swaps.size(), plan.decisions.size());
        EXPECT_LE(exec.new_peak_bytes, exec.original_peak_bytes);

        // Contended execution never under-reports the dedicated
        // model: hideable-only plans predicted zero overhead, so
        // any measured stall is pure link contention.
        EXPECT_GE(exec.measured_stall, plan.predicted_overhead);
        EXPECT_LE(exec.measured_stall, exec.queue_delay);

        // Hideable decisions are stall-free on an uncontended link
        // (executed alone, nothing else on the wire) — and the
        // shared link never beats the uncontended schedule.
        const std::size_t solo_checks = std::min(
            plan.decisions.size(), kSoloChecksPerModel);
        for (std::size_t i = 0; i < solo_checks; ++i) {
            SwapPlanReport solo;
            solo.decisions.push_back(plan.decisions[i]);
            const auto alone =
                execute_plan(result.view(), solo, opts.link);
            EXPECT_EQ(alone.measured_stall, 0u)
                << "decision " << i
                << " is hideable yet stalls uncontended";
            EXPECT_GE(exec.swaps[i].stall, alone.measured_stall);
            EXPECT_GE(exec.swaps[i].in_end, alone.swaps[0].in_end)
                << "the shared link cannot finish a swap-in "
                   "earlier than a dedicated one";
        }
    }
}

TEST(PlanExecuteAgreement, OverheadPlansAgreeUncontended)
{
    // With allow_overhead the planner predicts per-decision stalls;
    // executed one at a time (no contention) the executor must
    // reproduce each prediction exactly — same rounding helper.
    runtime::SessionConfig config;
    config.batch = 8;
    config.iterations = 2;
    const auto result = runtime::run_training(
        nn::build_model("alexnet-cifar"), config);

    PlannerOptions opts = paper_link_options();
    opts.allow_overhead = true;
    opts.min_block_bytes = 256 * 1024;
    const auto plan = SwapPlanner(opts).plan(result.view());
    ASSERT_FALSE(plan.decisions.empty());

    TimeNs solo_stall_sum = 0;
    for (const auto &d : plan.decisions) {
        SwapPlanReport solo;
        solo.decisions.push_back(d);
        const auto alone =
            execute_plan(result.view(), solo, opts.link);
        EXPECT_EQ(alone.measured_stall, d.overhead)
            << "block " << d.block;
        solo_stall_sum += alone.measured_stall;
    }
    EXPECT_EQ(solo_stall_sum, plan.predicted_overhead);

    // And the contended run is bounded below by that prediction.
    const auto exec = execute_plan(result.view(), plan, opts.link);
    EXPECT_GE(exec.measured_stall, plan.predicted_overhead);
}

}  // namespace
}  // namespace swap
}  // namespace pinpoint
