/**
 * @file
 * api::Study: the run artifact. Facets must equal the underlying
 * analyses computed directly (caching changes cost, never results),
 * be computed exactly once per Study, and be safe to hammer from
 * many threads — the property the sweep worker pool relies on.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/ati.h"
#include "analysis/breakdown.h"
#include "analysis/timeline.h"
#include "analysis/trace_view.h"
#include "api/study.h"
#include "core/check.h"

namespace pinpoint {
namespace api {
namespace {

WorkloadSpec
small_spec()
{
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 32;
    spec.iterations = 2;
    return spec;
}

TEST(Study, FacetsEqualDirectComputation)
{
    const Study study = Study::run(small_spec());

    // A fresh view reproduces what the pre-refactor direct
    // computation did: sharing one TraceView changes cost, never
    // results.
    const analysis::TraceView fresh(study.trace());
    const analysis::Timeline &direct_timeline = fresh.timeline();
    EXPECT_EQ(study.timeline().blocks().size(),
              direct_timeline.blocks().size());
    EXPECT_EQ(study.timeline().end(), direct_timeline.end());

    const auto direct_atis = analysis::compute_atis(fresh);
    ASSERT_EQ(study.atis().size(), direct_atis.size());
    for (std::size_t i = 0; i < direct_atis.size(); ++i) {
        EXPECT_EQ(study.atis()[i].block, direct_atis[i].block);
        EXPECT_EQ(study.atis()[i].interval, direct_atis[i].interval);
    }
    const auto direct_summary = analysis::summarize(
        analysis::ati_microseconds(direct_atis));
    EXPECT_EQ(study.ati_summary().count, direct_summary.count);
    EXPECT_EQ(study.ati_summary().median, direct_summary.median);

    const auto direct_breakdown =
        analysis::occupation_breakdown(fresh);
    EXPECT_EQ(study.breakdown().peak_total,
              direct_breakdown.peak_total);
    EXPECT_EQ(study.breakdown().at_peak, direct_breakdown.at_peak);
}

TEST(Study, OccupancyFacetAgreesWithBreakdownPeak)
{
    const Study study = Study::run(small_spec());
    // Two independent peak computations — the occupancy-edge walk
    // and the breakdown replay — must land on the same bytes.
    EXPECT_EQ(study.peak_occupancy_bytes(),
              study.breakdown().peak_total);
    EXPECT_FALSE(study.occupancy_edges().empty());
}

TEST(Study, SwapPlanFacetEqualsTheValidationPlan)
{
    // Two studies so neither facet can serve the other from its
    // cache: the plan-only facet (no link scheduling) must produce
    // the exact plan the full validation facet produces.
    const Study planned = Study::run(small_spec());
    const Study validated = Study::run(small_spec());
    const auto &plan = planned.swap_plan();
    const auto &vplan = validated.swap_validation().plan;
    EXPECT_EQ(plan.decisions.size(), vplan.decisions.size());
    EXPECT_EQ(plan.original_peak_bytes, vplan.original_peak_bytes);
    EXPECT_EQ(plan.peak_reduction_bytes, vplan.peak_reduction_bytes);
    EXPECT_EQ(plan.predicted_overhead, vplan.predicted_overhead);
    EXPECT_EQ(&planned.swap_plan(), &plan);
}

TEST(Study, SwapAndReliefFacetsEqualRuntimeHelpers)
{
    const Study study = Study::run(small_spec());
    const auto direct =
        runtime::validate_swap_plan(study.result(), study.device());
    EXPECT_EQ(study.swap_validation().plan.decisions.size(),
              direct.plan.decisions.size());
    EXPECT_EQ(study.swap_validation().plan.peak_reduction_bytes,
              direct.plan.peak_reduction_bytes);
    EXPECT_EQ(study.swap_validation().execution.measured_stall,
              direct.execution.measured_stall);

    const auto direct_relief =
        runtime::plan_relief_all(study.result(), study.device());
    for (int i = 0; i < relief::kNumStrategies; ++i) {
        EXPECT_EQ(study.relief_all()[i].peak_reduction_bytes,
                  direct_relief[i].peak_reduction_bytes);
        EXPECT_EQ(study.relief_all()[i].measured_overhead,
                  direct_relief[i].measured_overhead);
        EXPECT_EQ(&study.relief(static_cast<relief::Strategy>(i)),
                  &study.relief_all()[i]);
    }
}

TEST(Study, FacetsAreComputedOnceAndCached)
{
    const Study study = Study::run(small_spec());
    // Same object on every access — the facet is a cache, not a
    // recomputation.
    EXPECT_EQ(&study.timeline(), &study.timeline());
    EXPECT_EQ(&study.atis(), &study.atis());
    EXPECT_EQ(&study.breakdown(), &study.breakdown());
    EXPECT_EQ(&study.swap_validation(), &study.swap_validation());
    EXPECT_EQ(&study.relief_all(), &study.relief_all());
    EXPECT_EQ(&study.iteration_pattern(),
              &study.iteration_pattern());
}

TEST(Study, FacetsAreThreadSafe)
{
    const Study study = Study::run(small_spec());
    const std::size_t expected_atis =
        analysis::compute_atis(analysis::TraceView(study.trace()))
            .size();

    std::vector<const void *> seen(16, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&study, &seen, t] {
            // Touch every facet concurrently; record one address.
            study.timeline();
            study.breakdown();
            study.swap_validation();
            study.relief_all();
            seen[t] = &study.atis();
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (const void *address : seen)
        EXPECT_EQ(address, &study.atis());
    EXPECT_EQ(study.atis().size(), expected_atis);
}

TEST(Study, MoveCarriesTheCache)
{
    Study study = Study::run(small_spec());
    const analysis::BreakdownResult *breakdown = &study.breakdown();
    Study moved = std::move(study);
    EXPECT_EQ(&moved.breakdown(), breakdown);
}

TEST(Study, DeviceOverloadHonorsCustomSpecs)
{
    WorkloadSpec spec = small_spec();
    sim::DeviceSpec custom = sim::DeviceSpec::titan_x_pascal();
    custom.name = "titan-x-half-link";
    custom.d2h_bw_bps /= 2;
    custom.h2d_bw_bps /= 2;
    auto session =
        runtime::run_training(spec.build(), spec.session_config());
    // spec.device may be any descriptive string with the device
    // overload — it is display-only and never preset-resolved.
    spec.device = "my custom half-link card";
    const Study study(spec, std::move(session), custom);
    // The facets must price the custom link, not a preset.
    EXPECT_EQ(study.device().name, "titan-x-half-link");
    EXPECT_EQ(study.device().d2h_bw_bps,
              sim::DeviceSpec::titan_x_pascal().d2h_bw_bps / 2);
    // Link-priced facets work — they never resolve spec.device.
    EXPECT_GT(study.swap_validation().plan.original_peak_bytes, 0u);
}

TEST(Study, FromTraceSupportsOfflineAnalysis)
{
    const Study recorded = Study::run(small_spec());
    trace::TraceRecorder copy = recorded.trace();
    const Study offline = Study::from_trace(
        std::move(copy), sim::DeviceSpec::titan_x_pascal());
    EXPECT_EQ(offline.atis().size(), recorded.atis().size());
    EXPECT_EQ(offline.breakdown().peak_total,
              recorded.breakdown().peak_total);
    EXPECT_EQ(offline.device().name,
              sim::DeviceSpec::titan_x_pascal().name);
    // The synthetic spec is marked: offline traces never
    // masquerade as a named workload.
    EXPECT_EQ(offline.spec().model, "");
}

TEST(Study, StudyOptionsReachTheFacets)
{
    StudyOptions opts;
    opts.swap.min_block_bytes = 1;
    opts.swap.allow_overhead = true;
    const Study aggressive = Study::run(small_spec(), opts);
    const Study conservative = Study::run(small_spec());
    // A 1-byte threshold with overhead allowed can only widen the
    // plan relative to the defaults.
    EXPECT_GE(aggressive.swap_validation().plan.decisions.size(),
              conservative.swap_validation().plan.decisions.size());
}

TEST(Study, RunValidatesTheSpec)
{
    WorkloadSpec bad;
    bad.model = "lenet";
    EXPECT_THROW(Study::run(bad), UsageError);
}

TEST(Study, SingleDeviceStudiesHaveNoDataParallelSurface)
{
    const Study study = Study::run(small_spec());
    EXPECT_FALSE(study.data_parallel());
    EXPECT_EQ(study.devices(), 1);
    EXPECT_DOUBLE_EQ(study.scaling_efficiency(), 1.0);
    EXPECT_DOUBLE_EQ(study.interconnect_busy_fraction(), 0.0);
    EXPECT_EQ(study.allreduce_time(), 0);
    EXPECT_EQ(study.allreduce_stall(), 0);
    EXPECT_THROW(study.data_parallel_result(), Error);
}

TEST(Study, DataParallelStudyProjectsThePrimaryReplica)
{
    WorkloadSpec spec = small_spec();
    spec.devices = 2;
    spec.topology = "nvlink";
    const Study study = Study::run(spec);

    ASSERT_TRUE(study.data_parallel());
    EXPECT_EQ(study.devices(), 2);
    const runtime::DataParallelResult &dp =
        study.data_parallel_result();
    ASSERT_EQ(dp.replicas.size(), 2u);
    // result() is the primary replica: every single-device facet
    // (timeline, ATI, swap, relief) analyzes replica 0 unchanged.
    EXPECT_EQ(&study.result(), &dp.primary());
    EXPECT_EQ(study.trace().size(), dp.primary().trace.size());

    EXPECT_GT(study.allreduce_time(), 0);
    EXPECT_GT(study.scaling_efficiency(), 0.0);
    EXPECT_LT(study.scaling_efficiency(), 1.0);
    EXPECT_DOUBLE_EQ(study.scaling_efficiency(),
                     dp.scaling_efficiency);
    EXPECT_GT(study.interconnect_busy_fraction(), 0.0);

    // The relief facet is armed with the topology: the peer-only
    // report is available on a two-device study.
    EXPECT_TRUE(study.relief(relief::Strategy::kPeerOnly).available);
    const Study single = Study::run(small_spec());
    EXPECT_FALSE(
        single.relief(relief::Strategy::kPeerOnly).available);
}

TEST(Study, DataParallelSpecsRoundTripThroughTheRunner)
{
    // The spec is the single source of the topology: id() carries
    // the axis and the study's DP result matches a direct
    // run_data_parallel with the same config.
    WorkloadSpec spec = small_spec();
    spec.devices = 2;
    spec.topology = "pcie";
    EXPECT_EQ(spec.id(), "mlp/b32/caching/titan-x/dp2/pcie");
    const Study study = Study::run(spec);
    const auto direct = runtime::run_data_parallel(
        spec.build(), spec.data_parallel_config());
    EXPECT_EQ(study.data_parallel_result().allreduce_time,
              direct.allreduce_time);
    EXPECT_EQ(study.data_parallel_result().gradient_bytes,
              direct.gradient_bytes);
    EXPECT_EQ(study.result().end_time, direct.primary().end_time);
}

}  // namespace
}  // namespace api
}  // namespace pinpoint
