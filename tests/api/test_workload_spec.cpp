/**
 * @file
 * api::WorkloadSpec: the canonical workload description and the
 * library's only workload parser. String forms round-trip, every
 * malformed input fails with a UsageError (the exit-2 class), and
 * the spec pins the session configuration exactly.
 */
#include <gtest/gtest.h>

#include "api/workload.h"
#include "core/check.h"

namespace pinpoint {
namespace api {
namespace {

TEST(WorkloadSpec, IdIsTheStableScenarioKey)
{
    WorkloadSpec spec;
    spec.model = "resnet50";
    spec.batch = 32;
    spec.allocator = runtime::AllocatorKind::kCaching;
    spec.device = "titan-x";
    EXPECT_EQ(spec.id(), "resnet50/b32/caching/titan-x");
}

TEST(WorkloadSpec, SingleDeviceIdIgnoresTopology)
{
    // devices = 1 ids are pinned by golden sweep CSVs: the devices
    // axis must not leak into them, whatever the topology field
    // says.
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 8;
    spec.topology = "nvlink";
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x");

    spec.devices = 4;
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x/dp4/nvlink");
}

TEST(WorkloadSpec, ToStringRoundTripsThroughFromString)
{
    WorkloadSpec spec;
    spec.model = "resnet18";
    spec.batch = 16;
    spec.iterations = 3;
    spec.allocator = runtime::AllocatorKind::kBuddy;
    spec.device = "a100";
    spec.micro_batches = 4;
    spec.devices = 2;
    spec.topology = "nvlink";

    const WorkloadSpec reparsed =
        WorkloadSpec::from_string(spec.to_string());
    EXPECT_EQ(reparsed.model, spec.model);
    EXPECT_EQ(reparsed.batch, spec.batch);
    EXPECT_EQ(reparsed.iterations, spec.iterations);
    EXPECT_EQ(reparsed.allocator, spec.allocator);
    EXPECT_EQ(reparsed.device, spec.device);
    EXPECT_EQ(reparsed.micro_batches, spec.micro_batches);
    EXPECT_EQ(reparsed.devices, spec.devices);
    EXPECT_EQ(reparsed.topology, spec.topology);
    EXPECT_EQ(reparsed.to_string(), spec.to_string());
}

TEST(WorkloadSpec, FromArgsParsesFlagValuePairs)
{
    const WorkloadSpec spec = WorkloadSpec::from_args(
        {"--model", "vgg16", "--batch", "8", "--device", "tiny"});
    EXPECT_EQ(spec.model, "vgg16");
    EXPECT_EQ(spec.batch, 8);
    EXPECT_EQ(spec.device, "tiny");
    // Unset fields keep the defaults.
    EXPECT_EQ(spec.iterations, 5);
    EXPECT_EQ(spec.micro_batches, 1);
}

TEST(WorkloadSpec, FromArgsBaseProvidesDefaults)
{
    WorkloadSpec base;
    base.model = "resnet50";
    base.batch = 64;
    const WorkloadSpec spec =
        WorkloadSpec::from_args({"--batch", "16"}, base);
    EXPECT_EQ(spec.model, "resnet50");
    EXPECT_EQ(spec.batch, 16);
}

TEST(WorkloadSpec, RejectsUnknownFlag)
{
    EXPECT_THROW(WorkloadSpec::from_args({"--batches", "16"}),
                 UsageError);
}

TEST(WorkloadSpec, RejectsPositionalToken)
{
    EXPECT_THROW(WorkloadSpec::from_args({"resnet50"}), UsageError);
}

TEST(WorkloadSpec, RejectsDanglingValueFlag)
{
    // The old CLI silently fell back to the default here.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch"}), UsageError);
    EXPECT_THROW(
        WorkloadSpec::from_args({"--batch", "--model", "mlp"}),
        UsageError);
}

TEST(WorkloadSpec, RejectsNonNumericNumbers)
{
    // The old CLI died with a raw std::invalid_argument.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "abc"}),
                 UsageError);
    // Partial numbers must not silently truncate.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "12abc"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--iterations", "2.5"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--micro-batches", ""}),
                 UsageError);
    // strtoX leniencies (leading whitespace, '+' sign) are closed:
    // the whole token must be the number.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", " 5"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "+5"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "5 "}),
                 UsageError);
}

TEST(WorkloadSpec, RejectsUnknownNames)
{
    EXPECT_THROW(WorkloadSpec::from_args({"--model", "lenet"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--device", "h100"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--allocator", "slab"}),
                 UsageError);
    EXPECT_THROW(
        WorkloadSpec::from_args({"--topology", "token-ring"}),
        UsageError);
}

TEST(WorkloadSpec, RejectsBadDeviceCounts)
{
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "0"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "-2"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "two"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "2.5"}),
                 UsageError);
    const WorkloadSpec ok = WorkloadSpec::from_args(
        {"--devices", "4", "--topology", "nvlink"});
    EXPECT_EQ(ok.devices, 4);
    EXPECT_EQ(ok.topology, "nvlink");
}

TEST(WorkloadSpec, ValidateChecksRanges)
{
    WorkloadSpec spec;
    spec.batch = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.batch = 1;
    spec.iterations = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.iterations = 1;
    spec.micro_batches = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.micro_batches = 1;
    spec.devices = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.devices = 1;
    spec.topology = "infiniband";
    EXPECT_THROW(spec.validate(), UsageError);
    spec.topology = "pcie";
    EXPECT_NO_THROW(spec.validate());
}

TEST(WorkloadSpec, UsageErrorIsAnError)
{
    // The CLI maps UsageError to exit 2 and plain Error to exit 1;
    // UsageError must stay a subclass so generic handlers catch it.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "x"}), Error);
}

TEST(WorkloadSpec, SessionConfigPinsEveryAxis)
{
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 64;
    spec.iterations = 3;
    spec.allocator = runtime::AllocatorKind::kDirect;
    spec.device = "a100";
    spec.micro_batches = 2;
    const runtime::SessionConfig config = spec.session_config();
    EXPECT_EQ(config.batch, 64);
    EXPECT_EQ(config.iterations, 3);
    EXPECT_EQ(config.allocator, runtime::AllocatorKind::kDirect);
    EXPECT_EQ(config.device.name, sim::DeviceSpec::a100_40gb().name);
    EXPECT_EQ(config.plan.micro_batches, 2);
}

TEST(WorkloadSpec, FlagNamesMatchToStringOrder)
{
    const auto &names = WorkloadSpec::flag_names();
    ASSERT_EQ(names.size(), 8u);
    const std::string str = WorkloadSpec().to_string();
    std::size_t pos = 0;
    for (const auto &name : names) {
        const std::size_t at = str.find("--" + name + " ", pos);
        EXPECT_NE(at, std::string::npos) << name;
        pos = at;
    }
}

}  // namespace
}  // namespace api
}  // namespace pinpoint
