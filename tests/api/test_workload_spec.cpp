/**
 * @file
 * api::WorkloadSpec: the canonical workload description and the
 * library's only workload parser. String forms round-trip, every
 * malformed input fails with a UsageError (the exit-2 class), and
 * the spec pins the session configuration exactly.
 */
#include <gtest/gtest.h>

#include "api/workload.h"
#include "core/check.h"

namespace pinpoint {
namespace api {
namespace {

TEST(WorkloadSpec, IdIsTheStableScenarioKey)
{
    WorkloadSpec spec;
    spec.model = "resnet50";
    spec.batch = 32;
    spec.allocator = runtime::AllocatorKind::kCaching;
    spec.device = "titan-x";
    EXPECT_EQ(spec.id(), "resnet50/b32/caching/titan-x");
}

TEST(WorkloadSpec, SingleDeviceIdIgnoresTopology)
{
    // devices = 1 ids are pinned by golden sweep CSVs: the devices
    // axis must not leak into them, whatever the topology field
    // says.
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 8;
    spec.topology = "nvlink";
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x");

    spec.devices = 4;
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x/dp4/nvlink");
}

TEST(WorkloadSpec, ToStringRoundTripsThroughFromString)
{
    WorkloadSpec spec;
    spec.model = "resnet18";
    spec.batch = 16;
    spec.iterations = 3;
    spec.allocator = runtime::AllocatorKind::kBuddy;
    spec.device = "a100";
    spec.micro_batches = 4;
    spec.devices = 2;
    spec.topology = "nvlink";

    const WorkloadSpec reparsed =
        WorkloadSpec::from_string(spec.to_string());
    EXPECT_EQ(reparsed.model, spec.model);
    EXPECT_EQ(reparsed.batch, spec.batch);
    EXPECT_EQ(reparsed.iterations, spec.iterations);
    EXPECT_EQ(reparsed.allocator, spec.allocator);
    EXPECT_EQ(reparsed.device, spec.device);
    EXPECT_EQ(reparsed.micro_batches, spec.micro_batches);
    EXPECT_EQ(reparsed.devices, spec.devices);
    EXPECT_EQ(reparsed.topology, spec.topology);
    EXPECT_EQ(reparsed.to_string(), spec.to_string());
}

TEST(WorkloadSpec, FromArgsParsesFlagValuePairs)
{
    const WorkloadSpec spec = WorkloadSpec::from_args(
        {"--model", "vgg16", "--batch", "8", "--device", "tiny"});
    EXPECT_EQ(spec.model, "vgg16");
    EXPECT_EQ(spec.batch, 8);
    EXPECT_EQ(spec.device, "tiny");
    // Unset fields keep the defaults.
    EXPECT_EQ(spec.iterations, 5);
    EXPECT_EQ(spec.micro_batches, 1);
}

TEST(WorkloadSpec, FromArgsBaseProvidesDefaults)
{
    WorkloadSpec base;
    base.model = "resnet50";
    base.batch = 64;
    const WorkloadSpec spec =
        WorkloadSpec::from_args({"--batch", "16"}, base);
    EXPECT_EQ(spec.model, "resnet50");
    EXPECT_EQ(spec.batch, 16);
}

TEST(WorkloadSpec, RejectsUnknownFlag)
{
    EXPECT_THROW(WorkloadSpec::from_args({"--batches", "16"}),
                 UsageError);
}

TEST(WorkloadSpec, RejectsPositionalToken)
{
    EXPECT_THROW(WorkloadSpec::from_args({"resnet50"}), UsageError);
}

TEST(WorkloadSpec, RejectsDanglingValueFlag)
{
    // The old CLI silently fell back to the default here.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch"}), UsageError);
    EXPECT_THROW(
        WorkloadSpec::from_args({"--batch", "--model", "mlp"}),
        UsageError);
}

TEST(WorkloadSpec, RejectsNonNumericNumbers)
{
    // The old CLI died with a raw std::invalid_argument.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "abc"}),
                 UsageError);
    // Partial numbers must not silently truncate.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "12abc"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--iterations", "2.5"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--micro-batches", ""}),
                 UsageError);
    // strtoX leniencies (leading whitespace, '+' sign) are closed:
    // the whole token must be the number.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", " 5"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "+5"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "5 "}),
                 UsageError);
}

TEST(WorkloadSpec, RejectsUnknownNames)
{
    EXPECT_THROW(WorkloadSpec::from_args({"--model", "lenet"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--device", "h100"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--allocator", "slab"}),
                 UsageError);
    EXPECT_THROW(
        WorkloadSpec::from_args({"--topology", "token-ring"}),
        UsageError);
}

TEST(WorkloadSpec, RejectsBadDeviceCounts)
{
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "0"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "-2"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "two"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--devices", "2.5"}),
                 UsageError);
    const WorkloadSpec ok = WorkloadSpec::from_args(
        {"--devices", "4", "--topology", "nvlink"});
    EXPECT_EQ(ok.devices, 4);
    EXPECT_EQ(ok.topology, "nvlink");
}

TEST(WorkloadSpec, ValidateChecksRanges)
{
    WorkloadSpec spec;
    spec.batch = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.batch = 1;
    spec.iterations = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.iterations = 1;
    spec.micro_batches = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.micro_batches = 1;
    spec.devices = 0;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.devices = 1;
    spec.topology = "infiniband";
    EXPECT_THROW(spec.validate(), UsageError);
    spec.topology = "pcie";
    EXPECT_NO_THROW(spec.validate());
}

TEST(WorkloadSpec, UsageErrorIsAnError)
{
    // The CLI maps UsageError to exit 2 and plain Error to exit 1;
    // UsageError must stay a subclass so generic handlers catch it.
    EXPECT_THROW(WorkloadSpec::from_args({"--batch", "x"}), Error);
}

TEST(WorkloadSpec, SessionConfigPinsEveryAxis)
{
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 64;
    spec.iterations = 3;
    spec.allocator = runtime::AllocatorKind::kDirect;
    spec.device = "a100";
    spec.micro_batches = 2;
    const runtime::SessionConfig config = spec.session_config();
    EXPECT_EQ(config.batch, 64);
    EXPECT_EQ(config.iterations, 3);
    EXPECT_EQ(config.allocator, runtime::AllocatorKind::kDirect);
    EXPECT_EQ(config.device.name, sim::DeviceSpec::a100_40gb().name);
    EXPECT_EQ(config.plan.micro_batches, 2);
}

TEST(WorkloadSpec, TrainF32IdIgnoresServingAxes)
{
    // train/f32 ids are pinned by golden sweep CSVs from before the
    // serving axis existed: mode/dtype/requests/arrival must not
    // leak into them.
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 8;
    spec.requests = 64;
    spec.arrival = runtime::ArrivalKind::kSteady;
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x");

    spec.mode = runtime::SessionMode::kInfer;
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x/infer/steady");

    spec.dtype = DType::kF16;
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x/infer/steady/f16");

    spec.mode = runtime::SessionMode::kTrain;
    EXPECT_EQ(spec.id(), "mlp/b8/caching/titan-x/f16");
}

TEST(WorkloadSpec, ServingFieldsRoundTripThroughFromString)
{
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 4;
    spec.mode = runtime::SessionMode::kInfer;
    spec.dtype = DType::kI8;
    spec.requests = 17;
    spec.arrival = runtime::ArrivalKind::kUniform;

    const WorkloadSpec reparsed =
        WorkloadSpec::from_string(spec.to_string());
    EXPECT_EQ(reparsed.mode, spec.mode);
    EXPECT_EQ(reparsed.dtype, spec.dtype);
    EXPECT_EQ(reparsed.requests, spec.requests);
    EXPECT_EQ(reparsed.arrival, spec.arrival);
    EXPECT_EQ(reparsed.to_string(), spec.to_string());
}

TEST(WorkloadSpec, RejectsBadServingFlags)
{
    // The exit-2 rejection matrix for the serving axes, with the
    // shared "unknown X (known: ...)" wording.
    try {
        WorkloadSpec::from_args({"--mode", "nonsense"});
        FAIL() << "expected UsageError";
    } catch (const UsageError &e) {
        EXPECT_EQ(std::string(e.what()),
                  "unknown mode 'nonsense' (known: train, infer)");
    }
    try {
        WorkloadSpec::from_args({"--dtype", "f64"});
        FAIL() << "expected UsageError";
    } catch (const UsageError &e) {
        EXPECT_EQ(std::string(e.what()),
                  "unknown dtype 'f64' (known: f32, f16, i8)");
    }
    try {
        WorkloadSpec::from_args({"--arrival", "poisson"});
        FAIL() << "expected UsageError";
    } catch (const UsageError &e) {
        EXPECT_EQ(std::string(e.what()),
                  "unknown arrival 'poisson' (known: steady, "
                  "uniform, bursty)");
    }
    EXPECT_THROW(WorkloadSpec::from_args({"--requests", "0"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--requests", "-3"}),
                 UsageError);
    EXPECT_THROW(WorkloadSpec::from_args({"--requests", "ten"}),
                 UsageError);
    // Dangling value flag: the old CLI silently used the default.
    EXPECT_THROW(WorkloadSpec::from_args({"--arrival"}), UsageError);
}

TEST(WorkloadSpec, ValidateRejectsInferConflicts)
{
    WorkloadSpec spec;
    spec.mode = runtime::SessionMode::kInfer;
    EXPECT_NO_THROW(spec.validate());
    // One request per plan: gradient accumulation is meaningless
    // without a backward pass.
    spec.micro_batches = 2;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.micro_batches = 1;
    spec.devices = 2;
    EXPECT_THROW(spec.validate(), UsageError);
    spec.devices = 1;
    spec.requests = 0;
    EXPECT_THROW(spec.validate(), UsageError);
}

TEST(WorkloadSpec, Int8AliasParsesAsI8)
{
    EXPECT_EQ(parse_workload_dtype("int8"), DType::kI8);
    const WorkloadSpec spec =
        WorkloadSpec::from_args({"--dtype", "int8"});
    EXPECT_EQ(spec.dtype, DType::kI8);
}

TEST(WorkloadSpec, InferenceConfigDerivesSeedFromId)
{
    WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 8;
    spec.mode = runtime::SessionMode::kInfer;
    spec.requests = 9;
    spec.arrival = runtime::ArrivalKind::kBursty;
    const runtime::InferenceConfig config = spec.inference_config();
    EXPECT_EQ(config.requests, 9);
    EXPECT_EQ(config.arrival, runtime::ArrivalKind::kBursty);
    // The seed is a pure function of the id: the same spec always
    // replays the same traffic, and any axis change re-keys it.
    EXPECT_EQ(config.seed, runtime::arrival_seed(spec.id()));
    WorkloadSpec other = spec;
    other.batch = 16;
    EXPECT_NE(other.inference_config().seed, config.seed);
}

TEST(WorkloadSpec, SessionConfigPinsDtype)
{
    WorkloadSpec spec;
    spec.dtype = DType::kF16;
    EXPECT_EQ(spec.session_config().plan.dtype, DType::kF16);
}

TEST(WorkloadSpec, FlagNamesMatchToStringOrder)
{
    const auto &names = WorkloadSpec::flag_names();
    ASSERT_EQ(names.size(), 12u);
    const std::string str = WorkloadSpec().to_string();
    std::size_t pos = 0;
    for (const auto &name : names) {
        const std::size_t at = str.find("--" + name + " ", pos);
        EXPECT_NE(at, std::string::npos) << name;
        pos = at;
    }
}

}  // namespace
}  // namespace api
}  // namespace pinpoint
