/** @file Tests for gradient-accumulation (micro-batch) plans. */
#include <gtest/gtest.h>

#include "analysis/breakdown.h"
#include "core/check.h"
#include "nn/models.h"
#include "runtime/plan_builder.h"
#include "runtime/session.h"

namespace pinpoint {
namespace runtime {
namespace {

PlanOptions
micro(int k)
{
    PlanOptions opt;
    opt.micro_batches = k;
    return opt;
}

TEST(MicroBatching, PlanValidatesForEveryK)
{
    for (int k : {1, 2, 4, 8}) {
        const Plan plan = build_plan(nn::mlp(), 64, micro(k));
        validate_plan(plan);
        // One data load per micro-batch.
        std::size_t loads = 0;
        for (const Op &op : plan.iteration_ops)
            if (op.phase == OpPhase::kDataLoad)
                ++loads;
        EXPECT_EQ(loads, static_cast<std::size_t>(k));
    }
}

TEST(MicroBatching, BatchMustDivide)
{
    EXPECT_THROW(build_plan(nn::mlp(), 10, micro(3)), Error);
    EXPECT_THROW(build_plan(nn::mlp(), 8, micro(0)), Error);
}

TEST(MicroBatching, OneOptimizerStepRegardlessOfK)
{
    const Plan plan = build_plan(nn::mlp(), 64, micro(4));
    std::size_t sgd_ops = 0;
    for (const Op &op : plan.iteration_ops)
        if (op.phase == OpPhase::kOptimizer)
            ++sgd_ops;
    EXPECT_EQ(sgd_ops, 4u) << "one SGD op per parameter, not per mb";
}

TEST(MicroBatching, GradBuffersAreSharedAndAccumulated)
{
    const Plan plan = build_plan(nn::mlp(), 64, micro(2));
    const TensorId wgrad = plan.named("fc0.weight.grad");
    // The grad is allocated exactly once (first micro-batch) ...
    std::size_t allocs = 0;
    std::size_t accum_reads = 0;
    for (const Op &op : plan.iteration_ops) {
        for (TensorId id : op.allocs)
            if (id == wgrad)
                ++allocs;
        if (op.phase == OpPhase::kBackward) {
            const bool reads = std::count(op.reads.begin(),
                                          op.reads.end(), wgrad) > 0;
            const bool writes = std::count(op.writes.begin(),
                                           op.writes.end(), wgrad) > 0;
            if (reads && writes)
                ++accum_reads;
        }
    }
    EXPECT_EQ(allocs, 1u);
    EXPECT_EQ(accum_reads, 1u)
        << "the second micro-batch reads+writes (accumulates)";
}

TEST(MicroBatching, InputTensorsArePerMicroBatch)
{
    const Plan plan = build_plan(nn::mlp(), 64, micro(2));
    EXPECT_NO_THROW(plan.named("input.x@mb0"));
    EXPECT_NO_THROW(plan.named("input.x@mb1"));
    EXPECT_THROW(plan.named("input.x"), Error);
    EXPECT_EQ(plan.tensor(plan.named("input.x@mb0")).shape,
              (Shape{32, 2}));
}

TEST(MicroBatching, ShrinksPeakIntermediates)
{
    // ResNet-18 is intermediate-dominated, so the effect is large.
    auto peak_with = [](int k) {
        SessionConfig config;
        config.batch = 32;
        config.iterations = 2;
        config.plan.micro_batches = k;
        const auto r = run_training(nn::resnet(18), config);
        const auto b = analysis::occupation_breakdown(r.view());
        return b.peak_per_category[static_cast<int>(
            Category::kIntermediate)];
    };
    const std::size_t k1 = peak_with(1);
    const std::size_t k4 = peak_with(4);
    EXPECT_LT(k4, k1);
    // Activations shrink ~4x; grads/workspaces put a floor under it.
    EXPECT_LT(static_cast<double>(k4),
              0.6 * static_cast<double>(k1));
}

TEST(MicroBatching, CostsMoreSimulatedTime)
{
    auto iter_time = [](int k) {
        SessionConfig config;
        config.batch = 128;
        config.iterations = 3;
        config.record_trace = false;
        config.plan.micro_batches = k;
        return run_training(nn::alexnet_cifar(), config)
            .iteration_time;
    };
    EXPECT_GT(iter_time(8), iter_time(1))
        << "8x the kernel launches must cost simulated time";
}

TEST(MicroBatching, EngineRunsKGreaterOne)
{
    SessionConfig config;
    config.batch = 32;
    config.iterations = 3;
    config.plan.micro_batches = 2;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_EQ(r.trace.count(trace::EventKind::kMalloc),
              r.trace.count(trace::EventKind::kFree));
    // Two loss fetches per iteration → two loss.item read events.
    std::size_t loss_reads = 0;
    for (const auto &e : r.trace.events())
        if (e.op == "loss.item" && e.iteration == 0)
            ++loss_reads;
    EXPECT_EQ(loss_reads, 2u);
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
