/** @file Unit tests for the run_training session facade. */
#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/device_memory.h"
#include "core/check.h"
#include "nn/models.h"
#include "runtime/session.h"

namespace pinpoint {
namespace runtime {
namespace {

TEST(Session, ProducesTraceAndStats)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 3;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_FALSE(r.trace.empty());
    EXPECT_GT(r.end_time, 0u);
    EXPECT_GT(r.iteration_time, 0u);
    EXPECT_LT(r.iteration_time, r.end_time);
    EXPECT_GT(r.usage.peak_total, 0u);
    EXPECT_GT(r.peak_reserved_bytes, 0u);
    EXPECT_EQ(r.alloc_stats.alloc_count, r.alloc_stats.free_count);
}

TEST(Session, TraceCanBeDisabled)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 2;
    config.record_trace = false;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_TRUE(r.trace.empty());
    EXPECT_GT(r.usage.peak_total, 0u);
}

TEST(Session, DirectAllocatorSelectable)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 2;
    config.allocator = AllocatorKind::kDirect;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_EQ(r.alloc_stats.cache_hit_count, 0u);
    EXPECT_EQ(r.alloc_stats.alloc_count,
              r.alloc_stats.device_alloc_count);
}

TEST(Session, CachingBeatsDirectOnSimulatedTime)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 10;
    config.record_trace = false;

    config.allocator = AllocatorKind::kCaching;
    const auto caching = run_training(nn::mlp(), config);
    config.allocator = AllocatorKind::kDirect;
    const auto direct = run_training(nn::mlp(), config);

    EXPECT_LT(caching.iteration_time, direct.iteration_time)
        << "driver calls per tensor must cost simulated time";
}

TEST(Session, SingleIterationMeasuresNoSteadyState)
{
    SessionConfig config;
    config.batch = 8;
    config.iterations = 1;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_EQ(r.iteration_time, 0u)
        << "steady-state timing needs >= 2 iterations";
    EXPECT_GT(r.end_time, 0u);
}

TEST(Session, OomSurfacesForOversizedWorkloads)
{
    SessionConfig config;
    config.batch = 2048;  // ResNet-50 at batch 2048 cannot fit 12 GB
    config.iterations = 1;
    EXPECT_THROW(run_training(nn::resnet(50), config),
                 alloc::DeviceOomError);
}

TEST(Session, DeviceIsConfigurable)
{
    SessionConfig config;
    config.batch = 64;
    config.iterations = 2;
    config.device = sim::DeviceSpec::a100_40gb();
    const auto a100 = run_training(nn::resnet(18), config);
    config.device = sim::DeviceSpec::titan_x_pascal();
    const auto titan = run_training(nn::resnet(18), config);
    EXPECT_LT(a100.iteration_time, titan.iteration_time)
        << "the A100 model must be faster";
}

TEST(Session, FragmentationReportedFromDeviceHeap)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 2;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_GE(r.device_fragmentation, 0.0);
    EXPECT_LE(r.device_fragmentation, 1.0);
}

TEST(Session, ValidateSwapPlanClosesTheLoop)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 3;
    const auto r = run_training(nn::resnet(18), config);

    const auto v = validate_swap_plan(r, config.device);
    EXPECT_EQ(v.execution.executed_decisions,
              v.plan.decisions.size());
    EXPECT_EQ(v.plan.original_peak_bytes,
              v.execution.original_peak_bytes);
    // Default options take the link from the device spec, so the
    // validation matches an explicit plan over the same link.
    swap::PlannerOptions opts;
    opts.link = analysis::LinkBandwidth{config.device.d2h_bw_bps,
                                        config.device.h2d_bw_bps};
    const auto direct = swap::SwapPlanner(opts).plan(r.view());
    EXPECT_EQ(v.plan.decisions.size(), direct.decisions.size());
    EXPECT_EQ(v.plan.peak_reduction_bytes,
              direct.peak_reduction_bytes);
    EXPECT_EQ(v.unpredicted_stall(),
              v.execution.measured_stall -
                  std::min(v.execution.measured_stall,
                           v.plan.predicted_overhead));
}

TEST(Session, ValidateSwapPlanNeedsATrace)
{
    SessionConfig config;
    config.batch = 16;
    config.iterations = 2;
    config.record_trace = false;
    const auto r = run_training(nn::mlp(), config);
    EXPECT_THROW(validate_swap_plan(r, config.device), Error);
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
