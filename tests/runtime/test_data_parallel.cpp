/**
 * @file
 * Data-parallel runtime: N replica sessions off one plan, one ring
 * all-reduce per iteration priced on the peer interconnect, and the
 * scaling-efficiency accounting the sweep columns are built from.
 */
#include <gtest/gtest.h>

#include "core/check.h"
#include "nn/model_registry.h"
#include "runtime/data_parallel.h"

namespace pinpoint {
namespace runtime {
namespace {

DataParallelConfig
mlp_config(int devices, sim::InterconnectSpec interconnect)
{
    DataParallelConfig config;
    config.session.batch = 16;
    config.session.iterations = 3;
    config.session.device = sim::DeviceSpec::titan_x_pascal();
    config.devices = devices;
    config.interconnect = interconnect;
    return config;
}

TEST(DataParallel, SingleDeviceIsTheDegenerateCase)
{
    const auto result = run_data_parallel(
        nn::build_model("mlp"),
        mlp_config(1, sim::InterconnectSpec::pcie_p2p()));
    ASSERT_EQ(result.replicas.size(), 1u);
    EXPECT_EQ(result.devices, 1);
    EXPECT_EQ(result.allreduce_time, 0);
    EXPECT_EQ(result.allreduce_stall, 0);
    EXPECT_EQ(result.iteration_time, result.compute_iteration_time);
    EXPECT_DOUBLE_EQ(result.scaling_efficiency, 1.0);
    EXPECT_DOUBLE_EQ(result.interconnect_busy_fraction, 0.0);
    // The collective is scheduled (one per iteration) but empty.
    ASSERT_EQ(result.allreduces.size(), 3u);
    for (const auto &ar : result.allreduces) {
        EXPECT_TRUE(ar.legs.empty());
        EXPECT_EQ(ar.duration(), 0);
    }
}

TEST(DataParallel, ReplicasAreDeterministicClones)
{
    const auto result = run_data_parallel(
        nn::build_model("mlp"),
        mlp_config(4, sim::InterconnectSpec::pcie_p2p()));
    ASSERT_EQ(result.replicas.size(), 4u);
    const SessionResult &primary = result.primary();
    EXPECT_EQ(&primary, &result.replicas.front());
    for (const SessionResult &replica : result.replicas) {
        // Same plan, same engine, same timeline — every replica is
        // a full honest session with an identical recorded trace.
        EXPECT_EQ(replica.trace.size(), primary.trace.size());
        EXPECT_EQ(replica.end_time, primary.end_time);
        EXPECT_EQ(replica.iteration_time, primary.iteration_time);
        EXPECT_EQ(replica.usage.peak_total, primary.usage.peak_total);
    }
}

TEST(DataParallel, AllReducePaysForTheGradientBytes)
{
    const sim::InterconnectSpec pcie =
        sim::InterconnectSpec::pcie_p2p();
    const auto result =
        run_data_parallel(nn::build_model("mlp"), mlp_config(4, pcie));

    EXPECT_EQ(result.gradient_bytes,
              result.primary().plan.parameter_bytes());
    EXPECT_GT(result.gradient_bytes, 0u);
    // One collective per iteration, each carrying the full payload.
    ASSERT_EQ(result.allreduces.size(), 3u);
    for (const auto &ar : result.allreduces) {
        EXPECT_EQ(ar.devices, 4);
        EXPECT_EQ(ar.bytes, result.gradient_bytes);
        EXPECT_EQ(ar.legs.size(), 2u * 3u * 4u);
    }

    // The lockstep schedule serializes collectives, so the steady
    // state matches the dedicated ring and the effective iteration
    // is compute plus the exposed collective.
    EXPECT_EQ(result.allreduce_time, result.allreduce_ideal_time);
    EXPECT_EQ(result.allreduce_ideal_time,
              sim::ring_all_reduce_ideal_ns(result.gradient_bytes, 4,
                                            pcie));
    EXPECT_EQ(result.allreduce_stall, 0);
    EXPECT_EQ(result.iteration_time,
              result.compute_iteration_time + result.allreduce_time);

    // Efficiency is the computing fraction of the iteration.
    EXPECT_GT(result.scaling_efficiency, 0.0);
    EXPECT_LT(result.scaling_efficiency, 1.0);
    EXPECT_DOUBLE_EQ(
        result.scaling_efficiency,
        static_cast<double>(result.compute_iteration_time) /
            static_cast<double>(result.iteration_time));
    EXPECT_GT(result.interconnect_busy_fraction, 0.0);
    EXPECT_LE(result.interconnect_busy_fraction, 1.0);
}

TEST(DataParallel, FasterInterconnectScalesBetter)
{
    const nn::Model model = nn::build_model("mlp");
    const auto pcie = run_data_parallel(
        model, mlp_config(4, sim::InterconnectSpec::pcie_p2p()));
    const auto nvlink = run_data_parallel(
        model, mlp_config(4, sim::InterconnectSpec::nvlink()));

    // Same compute, cheaper synchronization.
    EXPECT_EQ(pcie.compute_iteration_time,
              nvlink.compute_iteration_time);
    EXPECT_LT(nvlink.allreduce_time, pcie.allreduce_time);
    EXPECT_GT(nvlink.scaling_efficiency, pcie.scaling_efficiency);
}

TEST(DataParallel, EfficiencyDegradesWithTheRingLength)
{
    // 2*(N-1) lockstep steps: more devices means a longer exposed
    // collective for the same gradient payload.
    const nn::Model model = nn::build_model("mlp");
    const auto two = run_data_parallel(
        model, mlp_config(2, sim::InterconnectSpec::pcie_p2p()));
    const auto eight = run_data_parallel(
        model, mlp_config(8, sim::InterconnectSpec::pcie_p2p()));
    EXPECT_GT(eight.allreduce_time, two.allreduce_time);
    EXPECT_LT(eight.scaling_efficiency, two.scaling_efficiency);
}

TEST(DataParallel, RejectsNonPositiveDeviceCounts)
{
    DataParallelConfig config =
        mlp_config(0, sim::InterconnectSpec::pcie_p2p());
    EXPECT_THROW(run_data_parallel(nn::build_model("mlp"), config),
                 Error);
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
