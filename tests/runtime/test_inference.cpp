/**
 * @file
 * Property tests for the serving workload axis: zoo-wide purity of
 * inference plans (no backward/optimizer work), weight residency
 * across requests, the dtype axis shrinking the footprint, and the
 * byte-reproducibility of the seeded arrival process — the
 * invariants the golden CLI fixtures and the sweep determinism
 * checks lean on.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/iteration.h"
#include "api/study.h"
#include "core/check.h"
#include "api/workload.h"
#include "nn/model_registry.h"
#include "runtime/plan_builder.h"
#include "runtime/request_stream.h"
#include "sweep/export.h"

namespace pinpoint {
namespace runtime {
namespace {

/** Small serving config: batch-4 requests on the default device. */
InferenceConfig
small_config(int requests, ArrivalKind arrival = ArrivalKind::kBursty)
{
    InferenceConfig config;
    config.session.batch = 4;
    config.requests = requests;
    config.arrival = arrival;
    config.seed = arrival_seed("test-stream");
    return config;
}

TEST(Inference, ZooWidePlansHaveNoBackwardOrOptimizerOps)
{
    for (const auto &name : nn::default_zoo_names()) {
        const Plan plan =
            build_inference_plan(nn::build_model(name), 4);
        for (const auto &op : plan.iteration_ops) {
            EXPECT_NE(op.phase, OpPhase::kBackward)
                << name << ": " << op.name;
            EXPECT_NE(op.phase, OpPhase::kOptimizer)
                << name << ": " << op.name;
        }
    }
}

TEST(Inference, ZooWideTracesHaveNoBackwardOrOptimizerEvents)
{
    for (const auto &name : nn::default_zoo_names()) {
        const InferenceResult r =
            run_inference(nn::build_model(name), small_config(3));
        ASSERT_EQ(r.requests.size(), 3u) << name;
        for (const auto &e : r.session.trace.events()) {
            EXPECT_EQ(e.op.find(".backward"), std::string::npos)
                << name << ": " << e.op;
            EXPECT_EQ(e.op.find("optimizer"), std::string::npos)
                << name << ": " << e.op;
        }
    }
}

TEST(Inference, ParametersStayResidentAcrossRequests)
{
    // Weights upload once at setup and live until teardown: no
    // parameter block is freed before the last request completes.
    const InferenceResult r =
        run_inference(nn::build_model("mlp"), small_config(5));
    const TimeNs last_completion = r.requests.back().completion;
    for (const auto &e : r.session.trace.events()) {
        if (e.kind == trace::EventKind::kFree &&
            e.category == Category::kParameter) {
            EXPECT_GE(e.time, last_completion)
                << "parameter block freed mid-stream at "
                << e.time;
        }
    }
}

TEST(Inference, HalfPrecisionShrinksThePeakZooWide)
{
    for (const auto &name : nn::default_zoo_names()) {
        InferenceConfig config = small_config(2);
        config.session.plan.dtype = DType::kF32;
        const auto f32 =
            run_inference(nn::build_model(name), config);
        config.session.plan.dtype = DType::kF16;
        const auto f16 =
            run_inference(nn::build_model(name), config);
        EXPECT_LT(f16.session.usage.peak_total,
                  f32.session.usage.peak_total)
            << name;
    }
}

TEST(Inference, ArrivalsAreByteReproducible)
{
    // The same config replays the same traffic, record for record.
    const auto a =
        run_inference(nn::build_model("mlp"), small_config(16));
    const auto b =
        run_inference(nn::build_model("mlp"), small_config(16));
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival) << i;
        EXPECT_EQ(a.requests[i].start, b.requests[i].start) << i;
        EXPECT_EQ(a.requests[i].completion, b.requests[i].completion)
            << i;
    }
    EXPECT_EQ(a.latency_p50, b.latency_p50);
    EXPECT_EQ(a.latency_max, b.latency_max);
}

TEST(Inference, ArrivalKindsProduceDistinctSchedules)
{
    const auto steady = run_inference(
        nn::build_model("mlp"), small_config(8, ArrivalKind::kSteady));
    const auto bursty = run_inference(
        nn::build_model("mlp"), small_config(8, ArrivalKind::kBursty));
    bool differs = false;
    for (std::size_t i = 2; i < steady.requests.size(); ++i)
        if (steady.requests[i].arrival !=
            bursty.requests[i].arrival)
            differs = true;
    EXPECT_TRUE(differs);
}

TEST(Inference, SeedIsDerivedFromTheSpecId)
{
    // arrival_seed is a pure FNV-1a of the key: stable across runs
    // (the fixtures pin it) and sensitive to every byte.
    EXPECT_EQ(arrival_seed("mlp/b8/caching/titan-x/infer/bursty"),
              arrival_seed("mlp/b8/caching/titan-x/infer/bursty"));
    EXPECT_NE(arrival_seed("mlp/b8/caching/titan-x/infer/bursty"),
              arrival_seed("mlp/b8/caching/titan-x/infer/steady"));
    EXPECT_NE(arrival_seed("a"), arrival_seed("b"));
}

TEST(Inference, RequestsQueueUnderBurstsAndIdleWhenSteady)
{
    // Steady arrivals are spaced beyond the service period: the
    // device keeps up, so every request starts at its arrival.
    const auto steady = run_inference(
        nn::build_model("mlp"), small_config(8, ArrivalKind::kSteady));
    for (std::size_t i = 2; i < steady.requests.size(); ++i)
        EXPECT_EQ(steady.requests[i].start,
                  steady.requests[i].arrival)
            << i;
    // Bursty arrivals pack requests back-to-back: at least one
    // request must wait behind its predecessor.
    const auto bursty = run_inference(
        nn::build_model("mlp"), small_config(8, ArrivalKind::kBursty));
    bool queued = false;
    for (std::size_t i = 2; i < bursty.requests.size(); ++i)
        if (bursty.requests[i].start > bursty.requests[i].arrival)
            queued = true;
    EXPECT_TRUE(queued);
}

TEST(Inference, ContinuousTraceHasNoIterationBoundary)
{
    // Every request is labeled iteration 0 (plus the setup tag):
    // the trace is one steady stream, not an iteration sequence.
    const InferenceResult r =
        run_inference(nn::build_model("mlp"), small_config(4));
    for (const auto &e : r.session.trace.events())
        EXPECT_TRUE(e.iteration == 0 ||
                    e.iteration == trace::kSetupIteration)
            << e.iteration;
}

TEST(Inference, IterationDetectorDegradesGracefully)
{
    // detect_iteration_pattern sees one labeled iteration and no
    // boundary: it must report that honestly (<= 1 iteration,
    // stability defined) instead of inventing a training rhythm.
    api::WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 4;
    spec.mode = SessionMode::kInfer;
    spec.requests = 6;
    const api::Study study = api::Study::run(spec);
    ASSERT_TRUE(study.inference());
    const analysis::IterationPattern &pattern =
        study.iteration_pattern();
    EXPECT_LE(pattern.iterations, 1u);
    EXPECT_GE(pattern.signature_stability, 0.0);
    EXPECT_LE(pattern.signature_stability, 1.0);
}

TEST(Inference, StudyServingSurfaceAnswersZerosForTraining)
{
    api::WorkloadSpec spec;
    spec.model = "mlp";
    spec.batch = 4;
    spec.iterations = 2;
    const api::Study study = api::Study::run(spec);
    EXPECT_FALSE(study.inference());
    EXPECT_EQ(study.requests(), 0);
    EXPECT_EQ(study.latency_p50(), 0u);
    EXPECT_EQ(study.latency_max(), 0u);
    EXPECT_THROW(study.inference_result(), Error);
}

TEST(Inference, SweepOverServingAxesIsJobCountInvariant)
{
    // The jobs-8 sweep must export byte-identical reports to the
    // serial one across the mode x dtype grid — the property the CI
    // determinism check enforces end to end.
    sweep::SweepGrid grid;
    grid.models = {"mlp"};
    grid.batches = {4};
    grid.allocators = {AllocatorKind::kCaching};
    grid.modes = {SessionMode::kTrain, SessionMode::kInfer};
    grid.dtypes = {DType::kF32, DType::kF16};
    grid.iterations = 2;
    grid.requests = 4;

    sweep::SweepOptions serial;
    serial.jobs = 1;
    sweep::SweepOptions parallel;
    parallel.jobs = 8;
    const auto a = sweep::run_sweep(grid, serial);
    const auto b = sweep::run_sweep(grid, parallel);
    EXPECT_EQ(sweep::sweep_csv_string(a), sweep::sweep_csv_string(b));
    EXPECT_EQ(sweep::sweep_json_string(a),
              sweep::sweep_json_string(b));
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
