/** @file Unit tests for plan lowering and liveness. */
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/check.h"
#include "nn/models.h"
#include "runtime/plan_builder.h"

namespace pinpoint {
namespace runtime {
namespace {

TEST(PlanBuilder, MlpPlanStructure)
{
    const Plan plan = build_plan(nn::mlp(), 64);
    EXPECT_EQ(plan.model_name, "mlp");
    EXPECT_EQ(plan.batch, 64);

    // Persistent tensors: W0, b0, W1, b1.
    EXPECT_EQ(plan.persistent.size(), 4u);
    EXPECT_EQ(plan.tensor(plan.named("fc0.weight")).shape,
              (Shape{12288, 2}));
    EXPECT_EQ(plan.tensor(plan.named("fc0.bias")).shape,
              (Shape{12288}));
    for (TensorId id : plan.persistent)
        EXPECT_EQ(plan.tensor(id).category, Category::kParameter);
}

TEST(PlanBuilder, MlpDecomposesLinearPerFig1)
{
    const Plan plan = build_plan(nn::mlp(), 64);
    std::vector<std::string> names;
    for (const Op &op : plan.iteration_ops)
        names.push_back(op.name);
    // Fig. 1: star (mat_mul) and plus (add_bias) are separate ops.
    EXPECT_NE(std::find(names.begin(), names.end(), "fc0.mat_mul"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "fc0.add_bias"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "relu0.forward"),
              names.end());
}

TEST(PlanBuilder, FusedLinearWhenDecompositionDisabled)
{
    PlanOptions opt;
    opt.decompose_linear = false;
    const Plan plan = build_plan(nn::mlp(), 64, opt);
    for (const Op &op : plan.iteration_ops)
        EXPECT_EQ(op.name.find(".mat_mul"), std::string::npos);
}

TEST(PlanBuilder, PhasesAreOrdered)
{
    const Plan plan = build_plan(nn::mlp(), 64);
    int last_phase = -1;
    for (const Op &op : plan.iteration_ops) {
        const int phase = static_cast<int>(op.phase);
        EXPECT_GE(phase, last_phase)
            << "op " << op.name << " out of phase order";
        last_phase = phase;
    }
    EXPECT_EQ(plan.iteration_ops.front().phase, OpPhase::kDataLoad);
    EXPECT_EQ(plan.iteration_ops.back().phase, OpPhase::kOptimizer);
}

TEST(PlanBuilder, DataLoadCarriesInputBytes)
{
    const Plan plan = build_plan(nn::mlp(), 64);
    const Op &load = plan.iteration_ops.front();
    const std::size_t x_bytes = 64 * 2 * 4;
    const std::size_t label_bytes = 64 * 8;
    EXPECT_EQ(load.h2d_bytes, x_bytes + label_bytes);
    EXPECT_EQ(plan.tensor(plan.named("input.x")).category,
              Category::kInput);
    EXPECT_EQ(plan.tensor(plan.named("input.labels")).dtype,
              DType::kI64);
}

TEST(PlanBuilder, OneOptimizerOpPerTrainableParam)
{
    const Plan plan = build_plan(nn::mlp(), 64);
    std::size_t sgd_ops = 0;
    for (const Op &op : plan.iteration_ops)
        if (op.phase == OpPhase::kOptimizer)
            ++sgd_ops;
    EXPECT_EQ(sgd_ops, 4u);
}

TEST(PlanBuilder, MomentumAddsPersistentState)
{
    PlanOptions opt;
    opt.sgd_momentum = true;
    const Plan plan = build_plan(nn::mlp(), 64, opt);
    EXPECT_EQ(plan.persistent.size(), 8u);
    const TensorId m = plan.named("fc0.weight.momentum");
    EXPECT_EQ(plan.tensor(m).shape, (Shape{12288, 2}));
    EXPECT_EQ(plan.tensor(m).category, Category::kIntermediate);
}

TEST(PlanBuilder, EagerFreesEveryTransientExactlyOnce)
{
    const Plan plan = build_plan(nn::resnet(18), 8);
    std::unordered_set<TensorId> persistent(plan.persistent.begin(),
                                            plan.persistent.end());
    std::unordered_set<TensorId> allocated;
    std::unordered_set<TensorId> freed;
    for (const Op &op : plan.iteration_ops) {
        for (TensorId id : op.allocs)
            EXPECT_TRUE(allocated.insert(id).second)
                << "double alloc of " << plan.tensor(id).name;
        for (TensorId id : op.frees)
            EXPECT_TRUE(freed.insert(id).second)
                << "double free of " << plan.tensor(id).name;
    }
    EXPECT_EQ(allocated, freed)
        << "every allocated tensor must be freed in-iteration";
    for (TensorId id : allocated)
        EXPECT_FALSE(persistent.count(id));
}

TEST(PlanBuilder, IterationEndPolicyDefersAllFrees)
{
    PlanOptions opt;
    opt.free_policy = FreePolicy::kIterationEnd;
    const Plan plan = build_plan(nn::mlp(), 64, opt);
    for (std::size_t i = 0; i + 1 < plan.iteration_ops.size(); ++i)
        EXPECT_TRUE(plan.iteration_ops[i].frees.empty())
            << plan.iteration_ops[i].name;
    EXPECT_FALSE(plan.iteration_ops.back().frees.empty());
}

TEST(PlanBuilder, InplaceReluAddsNoActivationTensor)
{
    PlanOptions inplace;
    inplace.inplace_relu = true;
    PlanOptions outofplace;
    outofplace.inplace_relu = false;
    const Plan a = build_plan(nn::mlp(), 64, inplace);
    const Plan b = build_plan(nn::mlp(), 64, outofplace);
    EXPECT_FALSE(a.by_name.count("relu0.out"));
    EXPECT_TRUE(b.by_name.count("relu0.out"));
    EXPECT_LT(a.tensors.size(), b.tensors.size());
}

TEST(PlanBuilder, ConvWorkspacesToggle)
{
    PlanOptions with;
    with.conv_workspace = true;
    PlanOptions without;
    without.conv_workspace = false;
    const Plan a = build_plan(nn::resnet(18), 4, with);
    const Plan b = build_plan(nn::resnet(18), 4, without);
    std::size_t ws_a = 0;
    for (const auto &t : a.tensors)
        if (t.name.find(".workspace.") != std::string::npos)
            ++ws_a;
    std::size_t ws_b = 0;
    for (const auto &t : b.tensors)
        if (t.name.find(".workspace.") != std::string::npos)
            ++ws_b;
    EXPECT_GT(ws_a, 0u);
    EXPECT_EQ(ws_b, 0u);
}

TEST(PlanBuilder, ResNetShortcutsAccumulateGradients)
{
    const Plan plan = build_plan(nn::resnet(18), 4);
    bool found_accum = false;
    for (const Op &op : plan.iteration_ops)
        if (op.name.find(".grad_accum") != std::string::npos)
            found_accum = true;
    EXPECT_TRUE(found_accum)
        << "fan-out of residual blocks must produce grad accumulation";
}

TEST(PlanBuilder, BackwardSplitsIntoCudnnKernels)
{
    const Plan plan = build_plan(nn::resnet(18), 4);
    std::size_t wgrad = 0;
    std::size_t dgrad = 0;
    for (const Op &op : plan.iteration_ops) {
        if (op.name.find(".backward.wgrad") != std::string::npos)
            ++wgrad;
        if (op.name.find(".backward.dgrad") != std::string::npos)
            ++dgrad;
    }
    EXPECT_GT(wgrad, 0u);
    // conv1 touches the graph input: it has a wgrad but no dgrad.
    EXPECT_EQ(dgrad, wgrad - 1);
}

TEST(PlanBuilder, ValidateAcceptsEveryZooModel)
{
    for (const nn::Model &m :
         {nn::mlp(), nn::alexnet_imagenet(), nn::alexnet_cifar(),
          nn::vgg16(), nn::vgg16(10, true), nn::resnet(18),
          nn::resnet(50), nn::inception_v1(), nn::mobilenet_v1(),
          nn::squeezenet()}) {
        const Plan plan = build_plan(m, 4);
        validate_plan(plan);  // aborts on violation
        EXPECT_GT(plan.iteration_ops.size(), 5u) << m.name;
        EXPECT_GT(plan.parameter_bytes(), 0u) << m.name;
    }
}

TEST(PlanBuilder, RejectsNonPositiveBatch)
{
    EXPECT_THROW(build_plan(nn::mlp(), 0), Error);
    EXPECT_THROW(build_plan(nn::mlp(), -1), Error);
}

TEST(Plan, NamedLookupThrowsOnUnknown)
{
    const Plan plan = build_plan(nn::mlp(), 8);
    EXPECT_THROW(plan.named("no.such.tensor"), Error);
    EXPECT_THROW(plan.tensor(99999), Error);
}

TEST(Plan, ParameterBytesMatchesShapeSum)
{
    const Plan plan = build_plan(nn::mlp(), 8);
    const std::size_t expected =
        (2 * 12288 + 12288 + 12288 * 2 + 2) * 4;
    EXPECT_EQ(plan.parameter_bytes(), expected);
    EXPECT_EQ(plan.persistent_bytes(), expected);
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
