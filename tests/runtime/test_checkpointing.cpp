/** @file Tests for activation checkpointing (recompute) plans. */
#include <gtest/gtest.h>

#include "analysis/breakdown.h"
#include "core/check.h"
#include "nn/models.h"
#include "runtime/plan_builder.h"
#include "runtime/session.h"

namespace pinpoint {
namespace runtime {
namespace {

PlanOptions
ckpt(int every)
{
    PlanOptions opt;
    opt.checkpoint_every = every;
    return opt;
}

TEST(Checkpointing, PlanValidatesOnChainModels)
{
    for (const nn::Model &m :
         {nn::mlp(), nn::alexnet_cifar(), nn::vgg16(),
          nn::mobilenet_v1()}) {
        const Plan plan = build_plan(m, 8, ckpt(3));
        validate_plan(plan);
    }
}

TEST(Checkpointing, RejectsFanOutGraphs)
{
    EXPECT_THROW(build_plan(nn::resnet(18), 4, ckpt(2)), Error);
    EXPECT_THROW(build_plan(nn::squeezenet(), 4, ckpt(2)), Error);
    EXPECT_THROW(build_plan(nn::transformer_encoder(), 2, ckpt(2)),
                 Error);
}

TEST(Checkpointing, EmitsRecomputeTensors)
{
    const Plan base = build_plan(nn::vgg16(), 4, ckpt(0));
    const Plan with = build_plan(nn::vgg16(), 4, ckpt(4));
    std::size_t rc = 0;
    for (const auto &t : with.tensors)
        if (t.name.find(".rc") != std::string::npos)
            ++rc;
    EXPECT_GT(rc, 0u);
    EXPECT_GT(with.iteration_ops.size(), base.iteration_ops.size())
        << "recompute adds forward ops";
}

TEST(Checkpointing, NonCheckpointActivationsFreedInForward)
{
    const Plan plan = build_plan(nn::vgg16(), 4, ckpt(4));
    // Find the first backward op index.
    std::size_t first_bwd = 0;
    for (std::size_t i = 0; i < plan.iteration_ops.size(); ++i) {
        if (plan.iteration_ops[i].phase == OpPhase::kBackward) {
            first_bwd = i;
            break;
        }
    }
    // Count original (non-.rc) activation frees before backward:
    // checkpointing must free most of them in the forward region.
    std::size_t early_act_frees = 0;
    for (std::size_t i = 0; i < first_bwd; ++i) {
        for (TensorId id : plan.iteration_ops[i].frees) {
            const auto &name = plan.tensor(id).name;
            if (name.find(".out") != std::string::npos &&
                name.find(".rc") == std::string::npos)
                ++early_act_frees;
        }
    }
    EXPECT_GT(early_act_frees, 5u);
}

TEST(Checkpointing, ReducesPeakAtRecomputeCost)
{
    auto run = [](int every) {
        SessionConfig config;
        config.batch = 64;
        config.iterations = 2;
        config.plan.checkpoint_every = every;
        const auto r =
            run_training(nn::mobilenet_v1(), config);
        return std::pair(
            analysis::occupation_breakdown(r.view()).peak_total,
            r.iteration_time);
    };
    const auto [peak0, time0] = run(0);
    const auto [peak8, time8] = run(8);
    EXPECT_LT(static_cast<double>(peak8),
              0.7 * static_cast<double>(peak0))
        << "checkpointing must cut the peak substantially";
    EXPECT_GT(time8, time0) << "recompute costs simulated time";
}

TEST(Checkpointing, ComposesWithMicroBatching)
{
    PlanOptions opt;
    opt.checkpoint_every = 3;
    opt.micro_batches = 2;
    const Plan plan = build_plan(nn::alexnet_cifar(), 32, opt);
    validate_plan(plan);
}

TEST(Checkpointing, EveryOneKeepsAllMaterializingNodes)
{
    // checkpoint_every = 1 marks every materializing node: no
    // recompute tensors should appear.
    const Plan plan = build_plan(nn::mlp(), 16, ckpt(1));
    for (const auto &t : plan.tensors)
        EXPECT_EQ(t.name.find(".rc"), std::string::npos) << t.name;
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
