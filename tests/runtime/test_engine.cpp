/** @file Unit tests for the training engine. */
#include <gtest/gtest.h>

#include "alloc/caching_allocator.h"
#include "alloc/device_memory.h"
#include "analysis/breakdown.h"
#include "analysis/trace_view.h"
#include "core/check.h"
#include "nn/models.h"
#include "runtime/engine.h"
#include "runtime/plan_builder.h"

namespace pinpoint {
namespace runtime {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : plan_(build_plan(nn::mlp(), 32)),
          device_(12ull * 1024 * 1024 * 1024),
          cost_(sim::DeviceSpec::titan_x_pascal()),
          alloc_(device_, clock_, cost_)
    {
    }

    Plan plan_;
    alloc::DeviceMemory device_;
    sim::VirtualClock clock_;
    sim::CostModel cost_;
    alloc::CachingAllocator alloc_;
    trace::TraceRecorder trace_;
};

TEST_F(EngineTest, SetupHappensOnceAndTagsEvents)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    engine.run(2);
    std::size_t setup_mallocs = 0;
    for (const auto &e : trace_.events()) {
        if (e.iteration == kSetupIteration &&
            e.kind == trace::EventKind::kMalloc)
            ++setup_mallocs;
    }
    EXPECT_EQ(setup_mallocs, plan_.persistent.size());
}

TEST_F(EngineTest, RunIsResumable)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    engine.run(2);
    EXPECT_EQ(engine.iterations_done(), 2);
    engine.run(3);
    EXPECT_EQ(engine.iterations_done(), 5);
    // Iterations 0..4 all appear in the trace.
    std::uint32_t max_iter = 0;
    for (const auto &e : trace_.events())
        if (e.iteration != kSetupIteration)
            max_iter = std::max(max_iter, e.iteration);
    EXPECT_EQ(max_iter, 4u);
}

TEST_F(EngineTest, MallocsAndFreesBalanceAfterTeardown)
{
    {
        Engine engine(plan_, alloc_, clock_, cost_, &trace_);
        engine.run(3);
        engine.teardown();
    }
    EXPECT_EQ(trace_.count(trace::EventKind::kMalloc),
              trace_.count(trace::EventKind::kFree));
    EXPECT_EQ(alloc_.live_blocks(), 0u);
    EXPECT_EQ(alloc_.stats().allocated_bytes, 0u);
}

TEST_F(EngineTest, DestructorTearsDown)
{
    {
        Engine engine(plan_, alloc_, clock_, cost_, &trace_);
        engine.run(1);
    }
    EXPECT_EQ(alloc_.live_blocks(), 0u);
}

TEST_F(EngineTest, UsageMatchesTraceBreakdown)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    engine.run(3);
    const auto breakdown = analysis::occupation_breakdown(analysis::TraceView(trace_));
    EXPECT_EQ(engine.usage().peak_total, breakdown.peak_total);
    for (int c = 0; c < kNumCategories; ++c)
        EXPECT_EQ(engine.usage().at_peak[c], breakdown.at_peak[c]);
}

TEST_F(EngineTest, EventsCarryOpContext)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    engine.run(1);
    bool saw_matmul_read = false;
    for (const auto &e : trace_.events()) {
        if (e.op == "fc0.mat_mul" &&
            e.kind == trace::EventKind::kRead)
            saw_matmul_read = true;
        if (e.kind == trace::EventKind::kRead ||
            e.kind == trace::EventKind::kWrite) {
            EXPECT_FALSE(e.op.empty());
        }
    }
    EXPECT_TRUE(saw_matmul_read);
}

TEST_F(EngineTest, ClockAdvancesMonotonically)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    const TimeNs t0 = clock_.now();
    engine.run(1);
    const TimeNs t1 = clock_.now();
    engine.run(1);
    const TimeNs t2 = clock_.now();
    EXPECT_GT(t1, t0);
    EXPECT_GT(t2, t1);
    // Steady-state iterations cost the same simulated time.
    engine.run(1);
    const TimeNs t3 = clock_.now();
    EXPECT_EQ(t3 - t2, t2 - t1);
}

TEST_F(EngineTest, NullRecorderDisablesTracing)
{
    Engine engine(plan_, alloc_, clock_, cost_, nullptr);
    engine.run(2);
    EXPECT_TRUE(trace_.empty());
    EXPECT_GT(engine.usage().peak_total, 0u);
}

TEST_F(EngineTest, StagingBufferRequiresEpochLength)
{
    EngineOptions opts;
    opts.staging_buffer_bytes = 1024 * 1024;
    EXPECT_THROW(
        Engine(plan_, alloc_, clock_, cost_, &trace_, opts), Error);
}

TEST_F(EngineTest, StagingBufferShuffledOncePerEpoch)
{
    EngineOptions opts;
    opts.staging_buffer_bytes = 64 * 1024 * 1024;
    opts.iterations_per_epoch = 4;
    Engine engine(plan_, alloc_, clock_, cost_, &trace_, opts);
    engine.run(9);  // epochs at iterations 4 and 8
    std::size_t staging_writes = 0;
    std::size_t staging_reads = 0;
    for (const auto &e : trace_.events()) {
        if (e.op == "dataset.shuffle") {
            if (e.kind == trace::EventKind::kWrite)
                ++staging_writes;
            else
                ++staging_reads;
        }
    }
    EXPECT_EQ(staging_writes, 2u);
    EXPECT_EQ(staging_reads, 2u);
}

TEST_F(EngineTest, RejectsNonPositiveIterations)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    EXPECT_THROW(engine.run(0), Error);
    EXPECT_THROW(engine.run(-1), Error);
}

TEST_F(EngineTest, PerIterationEventCountIsStable)
{
    Engine engine(plan_, alloc_, clock_, cost_, &trace_);
    engine.run(4);
    std::array<std::size_t, 4> counts{};
    for (const auto &e : trace_.events()) {
        if (e.iteration != kSetupIteration)
            ++counts[e.iteration];
    }
    EXPECT_GT(counts[0], 0u);
    for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_EQ(counts[i], counts[0])
            << "iteration " << i << " emitted a different event count";
}

}  // namespace
}  // namespace runtime
}  // namespace pinpoint
