/**
 * @file
 * Integration tests: each of the paper's headline observations,
 * verified end-to-end against full simulated training runs. These
 * are the acceptance tests of the reproduction.
 */
#include <gtest/gtest.h>

#include "analysis/ati.h"
#include "analysis/breakdown.h"
#include "analysis/iteration.h"
#include "analysis/outliers.h"
#include "analysis/stats.h"
#include "analysis/timeline.h"
#include "analysis/trace_view.h"
#include "alloc/device_memory.h"
#include "nn/models.h"
#include "runtime/session.h"

namespace pinpoint {
namespace {

/** One shared MLP run (paper Sec. II setup), reused across tests. */
class MlpRun : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        runtime::SessionConfig config;
        config.batch = 64;
        config.iterations = 20;
        result_ = new runtime::SessionResult(
            runtime::run_training(nn::mlp(), config));
    }

    static void
    TearDownTestSuite()
    {
        delete result_;
        result_ = nullptr;
    }

    static runtime::SessionResult *result_;
};

runtime::SessionResult *MlpRun::result_ = nullptr;

TEST_F(MlpRun, Fig2IterativeMemoryAccessPatterns)
{
    // "There are obvious iterative memory access patterns."
    const auto p = analysis::detect_iteration_pattern(result_->view());
    EXPECT_GT(p.period_allocs, 0u) << "label-free period must exist";
    EXPECT_DOUBLE_EQ(p.signature_stability, 1.0)
        << "every iteration must allocate the identical block "
           "size sequence";
    EXPECT_EQ(p.iterations, 20u);
}

TEST_F(MlpRun, Fig2FewMemoryFragments)
{
    // "There are fewer memory fragments during MLP training."
    const analysis::Timeline &timeline = result_->view().timeline();
    const auto gaps = timeline.gaps_at(timeline.peak_time());
    EXPECT_LT(gaps.gap_fraction(), 0.5)
        << "live blocks must be densely packed at peak";
}

TEST_F(MlpRun, Fig3AtisAreConcentrated)
{
    // "The ATIs of most memory behaviors range from 10us to 25us,
    //  and their distributions are relatively concentrated."
    const auto atis = analysis::compute_atis(result_->view());
    ASSERT_GT(atis.size(), 100u);
    const auto s =
        analysis::summarize(analysis::ati_microseconds(atis));
    EXPECT_GE(s.median, 5.0);
    EXPECT_LE(s.median, 30.0) << "median in/near the 10-25us band";
    // Concentration: the IQR is narrow relative to the full range.
    EXPECT_LT(s.p75 - s.p25, (s.max - s.min) * 0.5);
}

TEST_F(MlpRun, Fig3MostBehaviorsAreNegligibleForSwapping)
{
    // Eq. 1 with the measured link: behaviors in the concentrated
    // band can hide only ~tens of KB — negligible.
    const analysis::LinkBandwidth link{6.4e9, 6.3e9};
    const auto atis = analysis::compute_atis(result_->view());
    analysis::Cdf cdf(analysis::ati_microseconds(atis));
    const double typical_gap_us = cdf.percentile(0.5);
    const double hideable = analysis::max_swap_bytes(
        static_cast<TimeNs>(typical_gap_us * kNsPerUs), link);
    EXPECT_LT(hideable, 256.0 * 1024)
        << "typical gaps must hide well under 256 KB";
}

TEST_F(MlpRun, Fig5ParametersAreASmallFraction)
{
    // "For most DNNs, parameters only account for a small fraction."
    const auto b = analysis::occupation_breakdown(result_->view());
    EXPECT_LT(b.fraction(Category::kParameter), 0.25);
    EXPECT_GT(b.fraction(Category::kIntermediate), 0.5)
        << "intermediate results are the primary contributor";
}

TEST(PaperObservations, Fig4OutlierExistsWithStagedDataset)
{
    runtime::SessionConfig config;
    config.batch = 64;
    config.engine.staging_buffer_bytes = 1200ull * 1024 * 1024;
    config.engine.iterations_per_epoch = 50;
    config.iterations = 101;
    const auto result = runtime::run_training(nn::mlp(), config);

    const auto atis = analysis::compute_atis(result.view());
    analysis::OutlierCriteria criteria;
    criteria.min_interval = 5 * kNsPerMs;  // epoch ~= 50 iterations
    criteria.min_size = 600ull * 1024 * 1024;
    const auto outliers = analysis::sift_outliers(atis, criteria);
    ASSERT_FALSE(outliers.empty())
        << "the staged dataset must show up as a huge-ATI, "
           "huge-size behavior";
    EXPECT_EQ(outliers.front().size, 1200ull * 1024 * 1024);
    EXPECT_EQ(outliers.front().category, Category::kInput);
}

TEST(PaperObservations, Fig6IntermediatesGrowWithBatch)
{
    // AlexNet/CIFAR-100: growing batch shifts the breakdown toward
    // intermediates, shrinks the parameter share, and slightly
    // raises the input share.
    const nn::Model model = nn::alexnet_cifar();
    double prev_param = 1.0;
    double prev_input = 0.0;
    std::size_t prev_interm_bytes = 0;
    for (std::int64_t batch : {16, 64, 256}) {
        runtime::SessionConfig config;
        config.batch = batch;
        config.iterations = 2;
        const auto r = runtime::run_training(model, config);
        const auto b = analysis::occupation_breakdown(r.view());
        const double param = b.fraction(Category::kParameter);
        const double input = b.fraction(Category::kInput);
        const std::size_t interm =
            b.at_peak[static_cast<int>(Category::kIntermediate)];
        EXPECT_LT(param, prev_param)
            << "parameter share must fall with batch " << batch;
        EXPECT_GT(input, prev_input)
            << "input share must rise with batch " << batch;
        EXPECT_GT(interm, prev_interm_bytes);
        prev_param = param;
        prev_input = input;
        prev_interm_bytes = interm;
    }
}

TEST(PaperObservations, Fig7DeeperResNetsStayIntermediateDominated)
{
    double share18 = 0.0;
    double share101 = 0.0;
    for (int depth : {18, 101}) {
        runtime::SessionConfig config;
        config.batch = 16;
        config.iterations = 2;
        const auto r =
            runtime::run_training(nn::resnet(depth), config);
        const auto b = analysis::occupation_breakdown(r.view());
        const double share = b.fraction(Category::kIntermediate);
        EXPECT_GT(share, 0.7) << "resnet" << depth;
        if (depth == 18)
            share18 = share;
        else
            share101 = share;
    }
    EXPECT_GT(share101, 0.8);
    EXPECT_GT(share18, 0.8);
}

TEST(PaperObservations, IntroInceptionStyleOomBeyondCapacity)
{
    // The intro's motivation: models can demand more memory than
    // the device has. A 12 GB Titan X cannot train ResNet-152 at
    // batch 128 — while the 40 GB A100 preset can plan it.
    runtime::SessionConfig config;
    config.batch = 128;
    config.iterations = 1;
    config.record_trace = false;
    EXPECT_THROW(runtime::run_training(nn::resnet(152), config),
                 alloc::DeviceOomError);
}

TEST(PaperObservations, TraceIsSelfConsistentAcrossAllocators)
{
    // The characterization must not depend on the allocator: block
    // count and per-category peaks match between caching and direct.
    runtime::SessionConfig config;
    config.batch = 32;
    config.iterations = 3;
    config.allocator = runtime::AllocatorKind::kCaching;
    const auto caching = runtime::run_training(nn::mlp(), config);
    config.allocator = runtime::AllocatorKind::kDirect;
    const auto direct = runtime::run_training(nn::mlp(), config);

    EXPECT_EQ(caching.trace.count(trace::EventKind::kMalloc),
              direct.trace.count(trace::EventKind::kMalloc));
    EXPECT_EQ(caching.trace.count(trace::EventKind::kRead),
              direct.trace.count(trace::EventKind::kRead));
    // Caching rounds block sizes up, so peaks may differ slightly
    // but within the rounding slack.
    const auto bc = analysis::occupation_breakdown(caching.view());
    const auto bd = analysis::occupation_breakdown(direct.view());
    EXPECT_NEAR(static_cast<double>(bc.peak_total),
                static_cast<double>(bd.peak_total),
                0.05 * static_cast<double>(bd.peak_total));
}

}  // namespace
}  // namespace pinpoint
