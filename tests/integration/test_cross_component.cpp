/**
 * @file
 * Cross-component integration: full runs through every allocator,
 * the transformer workload end-to-end, and export paths exercised
 * on real traces.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/breakdown.h"
#include "analysis/iteration.h"
#include "analysis/report.h"
#include "analysis/trace_view.h"
#include "nn/models.h"
#include "runtime/session.h"
#include "trace/chrome_trace.h"
#include "trace/csv.h"
#include "trace/slice.h"

namespace pinpoint {
namespace {

TEST(CrossComponent, EveryAllocatorRunsTheSameWorkload)
{
    for (auto kind : {runtime::AllocatorKind::kCaching,
                      runtime::AllocatorKind::kDirect,
                      runtime::AllocatorKind::kBuddy}) {
        runtime::SessionConfig config;
        config.batch = 32;
        config.iterations = 4;
        config.allocator = kind;
        const auto r = runtime::run_training(nn::alexnet_cifar(),
                                             config);
        EXPECT_EQ(r.alloc_stats.alloc_count, r.alloc_stats.free_count)
            << static_cast<int>(kind);
        const auto pattern =
            analysis::detect_iteration_pattern(r.view());
        EXPECT_DOUBLE_EQ(pattern.signature_stability, 1.0)
            << "iterativity is allocator-independent";
    }
}

TEST(CrossComponent, TransformerTrainsAndBreaksDownSanely)
{
    nn::TransformerConfig cfg;
    cfg.layers = 2;
    cfg.d_model = 128;
    cfg.heads = 4;
    cfg.d_ff = 512;
    cfg.seq_len = 64;
    cfg.vocab = 5000;

    runtime::SessionConfig config;
    config.batch = 4;
    config.iterations = 3;
    const auto r =
        runtime::run_training(nn::transformer_encoder(cfg), config);
    const auto b = analysis::occupation_breakdown(r.view());
    EXPECT_GT(b.peak_total, 0u);
    EXPECT_GT(b.fraction(Category::kIntermediate), 0.3);
    // The attention probs tensor exists with the right size.
    bool found_probs = false;
    for (const auto &e : r.trace.events()) {
        if (e.kind == trace::EventKind::kMalloc &&
            e.op == "alloc.layer0.attn.sdpa.probs") {
            found_probs = true;
            EXPECT_EQ(e.size,
                      static_cast<std::size_t>(4 * 4 * 64 * 64) * 4);
        }
    }
    EXPECT_TRUE(found_probs);
}

TEST(CrossComponent, ChromeExportOfARealRunIsWellFormed)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = 2;
    const auto r = runtime::run_training(nn::mlp(), config);
    std::stringstream ss;
    trace::write_chrome_trace(r.trace, ss);
    const std::string out = ss.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    // Begin/end pairs balance because the engine frees everything.
    const auto count_of = [&](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t pos = out.find(needle);
             pos != std::string::npos;
             pos = out.find(needle, pos + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count_of("\"ph\":\"b\""), count_of("\"ph\":\"e\""));
}

TEST(CrossComponent, SliceThenReportWorks)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = 8;
    const auto r = runtime::run_training(nn::mlp(), config);
    const auto window = trace::slice_iterations(r.trace, 2, 6);
    analysis::ReportOptions opts;
    opts.title = "sliced window";
    opts.gantt = false;
    const std::string report =
        analysis::report_string(analysis::TraceView(window), opts);
    EXPECT_NE(report.find("identical: 100.0% of 5 iterations"),
              std::string::npos)
        << report;
}

TEST(CrossComponent, CsvRoundTripPreservesAnalyses)
{
    runtime::SessionConfig config;
    config.batch = 16;
    config.iterations = 3;
    const auto r = runtime::run_training(nn::resnet(18), config);

    std::stringstream ss;
    trace::write_csv(r.trace, ss);
    const auto reloaded = trace::read_csv(ss);
    const auto a = analysis::occupation_breakdown(r.view());
    const auto b = analysis::occupation_breakdown(analysis::TraceView(reloaded));
    EXPECT_EQ(a.peak_total, b.peak_total);
    EXPECT_EQ(a.at_peak, b.at_peak);
    EXPECT_EQ(a.peak_time, b.peak_time);
}

TEST(CrossComponent, MicroBatchingPreservesIterativity)
{
    runtime::SessionConfig config;
    config.batch = 32;
    config.iterations = 6;
    config.plan.micro_batches = 4;
    const auto r = runtime::run_training(nn::mlp(), config);
    const auto pattern = analysis::detect_iteration_pattern(r.view());
    EXPECT_DOUBLE_EQ(pattern.signature_stability, 1.0);
    EXPECT_GT(pattern.period_allocs, 0u);
}

}  // namespace
}  // namespace pinpoint
