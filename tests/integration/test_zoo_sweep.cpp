/**
 * @file
 * Parameterized sweep over the model zoo: every model × batch-size
 * combination must satisfy the characterization invariants the rest
 * of the library relies on. This is the broad-coverage safety net
 * behind the per-figure benches.
 */
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "analysis/ati.h"
#include "analysis/breakdown.h"
#include "analysis/iteration.h"
#include "analysis/timeline.h"
#include "nn/models.h"
#include "nn/shape_infer.h"
#include "runtime/session.h"
#include "trace/slice.h"

namespace pinpoint {
namespace {

struct ZooCase {
    const char *name;
    std::function<nn::Model()> build;
    std::int64_t batch;
};

class ZooSweep : public ::testing::TestWithParam<ZooCase>
{
};

TEST_P(ZooSweep, TrainingRunSatisfiesInvariants)
{
    const ZooCase &zc = GetParam();
    const nn::Model model = zc.build();

    runtime::SessionConfig config;
    config.batch = zc.batch;
    config.iterations = 5;
    const auto r = runtime::run_training(model, config);

    // 1. Balanced allocation lifecycle.
    ASSERT_EQ(r.trace.count(trace::EventKind::kMalloc),
              r.trace.count(trace::EventKind::kFree));
    ASSERT_EQ(r.alloc_stats.alloc_count, r.alloc_stats.free_count);

    // 2. The trace replays consistently.
    analysis::Timeline timeline(r.trace);
    EXPECT_GT(timeline.blocks().size(), 0u);

    // 3. Perfectly iterative in steady state (the paper's Fig. 2
    //    claim). The first couple of iterations may record different
    //    rounded block sizes while the caching allocator's free
    //    lists settle (cold segments served unsplit), so check the
    //    warm window.
    trace::SliceOptions slice_opts;
    slice_opts.keep_setup = false;
    const auto steady =
        trace::slice_iterations(r.trace, 2, 4, slice_opts);
    const auto pattern = analysis::detect_iteration_pattern(steady);
    EXPECT_DOUBLE_EQ(pattern.signature_stability, 1.0);
    EXPECT_GT(pattern.period_allocs, 0u);

    // 4. Breakdown accounting: categories sum to the peak, and the
    //    engine's live accounting agrees with the trace replay.
    const auto b = analysis::occupation_breakdown(r.trace);
    EXPECT_EQ(b.at_peak[0] + b.at_peak[1] + b.at_peak[2],
              b.peak_total);
    EXPECT_EQ(r.usage.peak_total, b.peak_total);

    // 5. Parameter bytes at peak >= the model's parameter payload
    //    (rounding can only add).
    const auto infos =
        nn::infer(model.graph, model.input_shape(zc.batch));
    EXPECT_GE(b.at_peak[static_cast<int>(Category::kParameter)],
              static_cast<std::size_t>(
                  nn::total_param_bytes(infos)));

    // 6. ATIs exist and are non-negative with sane attribution.
    const auto atis = analysis::compute_atis(r.trace);
    EXPECT_GT(atis.size(), 10u);
    const auto groups = analysis::attribute_atis(atis);
    EXPECT_FALSE(groups.empty());

    // 7. Peak fits the device (we ran without OOM).
    EXPECT_LE(r.peak_reserved_bytes, config.device.dram_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooSweep,
    ::testing::Values(
        ZooCase{"mlp_b16", [] { return nn::mlp(); }, 16},
        ZooCase{"mlp_b256", [] { return nn::mlp(); }, 256},
        ZooCase{"alexnet_cifar_b32",
                [] { return nn::alexnet_cifar(); }, 32},
        ZooCase{"alexnet_cifar_b256",
                [] { return nn::alexnet_cifar(); }, 256},
        ZooCase{"alexnet_imagenet_b16",
                [] { return nn::alexnet_imagenet(); }, 16},
        ZooCase{"vgg16_b8", [] { return nn::vgg16(); }, 8},
        ZooCase{"vgg16bn_b8", [] { return nn::vgg16(10, true); }, 8},
        ZooCase{"resnet18_b16", [] { return nn::resnet(18); }, 16},
        ZooCase{"resnet34_b8", [] { return nn::resnet(34); }, 8},
        ZooCase{"resnet50_b8", [] { return nn::resnet(50); }, 8},
        ZooCase{"resnet101_b4", [] { return nn::resnet(101); }, 4},
        ZooCase{"resnet152_b4", [] { return nn::resnet(152); }, 4},
        ZooCase{"inception_b16",
                [] { return nn::inception_v1(); }, 16},
        ZooCase{"mobilenet_b32",
                [] { return nn::mobilenet_v1(); }, 32},
        ZooCase{"squeezenet_b32", [] { return nn::squeezenet(); },
                32},
        ZooCase{"transformer_tiny_b4",
                [] {
                    nn::TransformerConfig cfg;
                    cfg.layers = 2;
                    cfg.d_model = 128;
                    cfg.heads = 4;
                    cfg.d_ff = 512;
                    cfg.seq_len = 32;
                    cfg.vocab = 2000;
                    return nn::transformer_encoder(cfg);
                },
                4}),
    [](const auto &info) { return std::string(info.param.name); });

}  // namespace
}  // namespace pinpoint
