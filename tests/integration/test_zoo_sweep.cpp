/**
 * @file
 * Parameterized sweep over the model zoo: every model × batch-size
 * combination must satisfy the characterization invariants the rest
 * of the library relies on. Cases are expressed as sweep Scenarios
 * against the shared model registry — the same abstraction the
 * parallel sweep driver executes — so this test and `pinpoint_cli
 * sweep` agree on what a workload is.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/ati.h"
#include "analysis/breakdown.h"
#include "analysis/iteration.h"
#include "analysis/timeline.h"
#include "analysis/trace_view.h"
#include "nn/model_registry.h"
#include "nn/shape_infer.h"
#include "runtime/session.h"
#include "sweep/driver.h"
#include "sweep/scenario.h"
#include "trace/slice.h"

namespace pinpoint {
namespace {

sweep::Scenario
zoo_case(const char *model, std::int64_t batch)
{
    sweep::Scenario s;
    s.model = model;
    s.batch = batch;
    s.iterations = 5;
    return s;
}

class ZooSweep : public ::testing::TestWithParam<sweep::Scenario>
{
};

TEST_P(ZooSweep, TrainingRunSatisfiesInvariants)
{
    const sweep::Scenario &scenario = GetParam();
    const nn::Model model = nn::build_model(scenario.model);
    const runtime::SessionConfig config = scenario.session_config();
    const auto r = runtime::run_training(model, config);

    // 1. Balanced allocation lifecycle.
    ASSERT_EQ(r.trace.count(trace::EventKind::kMalloc),
              r.trace.count(trace::EventKind::kFree));
    ASSERT_EQ(r.alloc_stats.alloc_count, r.alloc_stats.free_count);

    // 2. The trace replays consistently.
    const analysis::Timeline &timeline = r.view().timeline();
    EXPECT_GT(timeline.blocks().size(), 0u);

    // 3. Perfectly iterative in steady state (the paper's Fig. 2
    //    claim). The first couple of iterations may record different
    //    rounded block sizes while the caching allocator's free
    //    lists settle (cold segments served unsplit), so check the
    //    warm window.
    trace::SliceOptions slice_opts;
    slice_opts.keep_setup = false;
    const auto steady =
        trace::slice_iterations(r.trace, 2, 4, slice_opts);
    const auto pattern = analysis::detect_iteration_pattern(analysis::TraceView(steady));
    EXPECT_DOUBLE_EQ(pattern.signature_stability, 1.0);
    EXPECT_GT(pattern.period_allocs, 0u);

    // 4. Breakdown accounting: categories sum to the peak, and the
    //    engine's live accounting agrees with the trace replay.
    const auto b = analysis::occupation_breakdown(r.view());
    EXPECT_EQ(b.at_peak[0] + b.at_peak[1] + b.at_peak[2],
              b.peak_total);
    EXPECT_EQ(r.usage.peak_total, b.peak_total);

    // 5. Parameter bytes at peak >= the model's parameter payload
    //    (rounding can only add).
    const auto infos =
        nn::infer(model.graph, model.input_shape(scenario.batch));
    EXPECT_GE(b.at_peak[static_cast<int>(Category::kParameter)],
              static_cast<std::size_t>(
                  nn::total_param_bytes(infos)));

    // 6. ATIs exist and are non-negative with sane attribution.
    const auto atis = analysis::compute_atis(r.view());
    EXPECT_GT(atis.size(), 10u);
    const auto groups = analysis::attribute_atis(atis);
    EXPECT_FALSE(groups.empty());

    // 7. Peak fits the device (we ran without OOM).
    EXPECT_LE(r.peak_reserved_bytes, config.device.dram_bytes);

    // 8. The sweep driver's aggregation of this scenario agrees
    //    with the direct run (same deterministic simulation).
    const auto aggregated = sweep::run_scenario(scenario, false);
    ASSERT_EQ(aggregated.status, sweep::ScenarioStatus::kOk)
        << aggregated.error;
    EXPECT_EQ(aggregated.peak_total_bytes, r.usage.peak_total);
    EXPECT_EQ(aggregated.end_time, r.end_time);
    EXPECT_EQ(aggregated.ati_count, atis.size());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooSweep,
    ::testing::Values(zoo_case("mlp", 16), zoo_case("mlp", 256),
                      zoo_case("alexnet-cifar", 32),
                      zoo_case("alexnet-cifar", 256),
                      zoo_case("alexnet", 16),
                      zoo_case("vgg16", 8),
                      // Deliberately the registry's 1000-class BN
                      // variant (the pre-registry sweep used a
                      // 10-class head): test and CLI now share one
                      // definition of each workload.
                      zoo_case("vgg16-bn", 8),
                      zoo_case("resnet18", 16),
                      zoo_case("resnet34", 8),
                      zoo_case("resnet50", 8),
                      zoo_case("resnet101", 4),
                      zoo_case("resnet152", 4),
                      zoo_case("inception", 16),
                      zoo_case("mobilenet", 32),
                      zoo_case("squeezenet", 32),
                      zoo_case("transformer-tiny", 4)),
    [](const auto &info) {
        std::string name = info.param.model + "_b" +
                           std::to_string(info.param.batch);
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

}  // namespace
}  // namespace pinpoint
