/**
 * @file
 * Unit tests for the recomputation planner: producer indexing from
 * the trace, measured-forward-time costing, gap walking, and the
 * zero-gap regression.
 */
#include <gtest/gtest.h>

#include "analysis/trace_view.h"
#include "relief/recompute_planner.h"

namespace pinpoint {
namespace relief {
namespace {

constexpr std::size_t kMB = 1024 * 1024;

trace::MemoryEvent
ev(TimeNs t, trace::EventKind kind, BlockId block, std::size_t size,
   const char *op = "", std::int32_t op_index = -1,
   Category category = Category::kIntermediate,
   std::uint32_t iteration = 0)
{
    trace::MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = size;
    e.tensor = block;
    e.category = category;
    e.iteration = iteration;
    e.op_index = op_index;
    e.op = op;
    return e;
}

/**
 * One forward op (index 5, 100 ns measured) producing a 64 MB
 * activation that is next read 10 ms later by the backward pass.
 */
trace::TraceRecorder
activation_trace()
{
    trace::TraceRecorder r;
    const std::size_t act = 64 * kMB;
    const std::size_t in = 8 * kMB;
    r.record(ev(0, trace::EventKind::kMalloc, 1, in, "", -1,
                Category::kInput));
    r.record(ev(0, trace::EventKind::kMalloc, 2, act));
    // conv1.forward reads the input at launch (t=10) and writes the
    // activation at completion (t=110): measured duration 100 ns.
    r.record(ev(10, trace::EventKind::kRead, 1, in, "conv1.forward", 5,
                Category::kInput));
    r.record(ev(110, trace::EventKind::kWrite, 2, act,
                "conv1.forward", 5));
    r.record(ev(10 * kNsPerMs, trace::EventKind::kRead, 2, act,
                "conv1.backward.dgrad", 42));
    r.record(ev(10 * kNsPerMs + 50, trace::EventKind::kFree, 2, act));
    r.record(ev(10 * kNsPerMs + 60, trace::EventKind::kFree, 1, in,
                "", -1, Category::kInput));
    return r;
}

TEST(IndexProducers, FindsForwardWriterWithMeasuredDuration)
{
    const auto producers =
        index_producers(analysis::TraceView(activation_trace()));
    ASSERT_EQ(producers.count(2), 1u);
    EXPECT_EQ(producers.at(2).op, "conv1.forward");
    EXPECT_EQ(producers.at(2).forward_ns, 100u);
    // The input block has no forward producer.
    EXPECT_EQ(producers.count(1), 0u);
}

TEST(IndexProducers, SkipsBackwardAndOptimizerWriters)
{
    trace::TraceRecorder r;
    r.record(ev(0, trace::EventKind::kMalloc, 1, 64 * kMB));
    r.record(ev(10, trace::EventKind::kRead, 1, 64 * kMB,
                "fc.backward.wgrad", 7));
    r.record(ev(110, trace::EventKind::kWrite, 1, 64 * kMB,
                "fc.backward.wgrad", 7));
    r.record(ev(200, trace::EventKind::kFree, 1, 64 * kMB));
    EXPECT_TRUE(index_producers(analysis::TraceView(r)).empty());

    EXPECT_FALSE(is_forward_op("fc.backward.wgrad"));
    EXPECT_FALSE(is_forward_op("layer1.0.out.grad_accum"));
    EXPECT_FALSE(is_forward_op("sgd.fc.weight"));
    EXPECT_FALSE(is_forward_op("data.h2d"));
    EXPECT_FALSE(is_forward_op(""));
    EXPECT_TRUE(is_forward_op("layer1.0.conv2.forward"));
    EXPECT_TRUE(is_forward_op("fc1.mat_mul"));
    EXPECT_TRUE(is_forward_op("fc1.add_bias"));
}

TEST(IndexProducers, SkipsNonIntermediateCategories)
{
    trace::TraceRecorder r;
    r.record(ev(0, trace::EventKind::kMalloc, 1, 64 * kMB, "", -1,
                Category::kParameter));
    r.record(ev(10, trace::EventKind::kRead, 1, 64 * kMB,
                "bn1.forward", 3, Category::kParameter));
    r.record(ev(110, trace::EventKind::kWrite, 1, 64 * kMB,
                "bn1.forward", 3, Category::kParameter));
    r.record(ev(200, trace::EventKind::kFree, 1, 64 * kMB, "", -1,
                Category::kParameter));
    EXPECT_EQ(index_producers(analysis::TraceView(r)).count(1), 0u);
}

TEST(RecomputePlanner, PlansGapAtMeasuredForwardCost)
{
    RecomputePlanner planner(RecomputeOptions{});
    const auto plan = planner.plan(analysis::TraceView(activation_trace()));
    ASSERT_EQ(plan.decisions.size(), 1u);
    const auto &d = plan.decisions[0];
    EXPECT_EQ(d.block, 2u);
    EXPECT_EQ(d.gap_start, 110u);
    EXPECT_EQ(d.gap_end, 10 * kNsPerMs);
    EXPECT_EQ(d.producer, "conv1.forward");
    EXPECT_EQ(d.recompute_cost, 100u);
    EXPECT_EQ(plan.predicted_overhead, 100u);
    EXPECT_EQ(plan.total_recomputed_bytes, 64 * kMB);
}

TEST(RecomputePlanner, ZeroGapProducesNoDecision)
{
    // Two accesses at the same instant: the "gap" has zero width, so
    // dropping the block buys nothing and must not be scheduled
    // (regression: gap_end <= gap_start candidates are skipped).
    trace::TraceRecorder r;
    const std::size_t act = 64 * kMB;
    r.record(ev(0, trace::EventKind::kMalloc, 2, kMB));
    r.record(ev(0, trace::EventKind::kMalloc, 1, act));
    r.record(ev(5, trace::EventKind::kRead, 2, kMB, "f.forward", 1));
    r.record(ev(105, trace::EventKind::kWrite, 1, act, "f.forward", 1));
    r.record(ev(105, trace::EventKind::kRead, 1, act, "g.forward", 2));
    r.record(ev(200, trace::EventKind::kFree, 1, act));
    r.record(ev(210, trace::EventKind::kFree, 2, kMB));
    RecomputePlanner planner(RecomputeOptions{});
    EXPECT_TRUE(planner.plan(analysis::TraceView(r)).decisions.empty());
}

TEST(RecomputePlanner, ReRunMustFitInsideTheGap)
{
    // A 100 ns producer and a 60 ns gap: the output buffer would be
    // live again for the entire gap while the producer replays, so
    // dropping it frees nothing and must not be scheduled.
    trace::TraceRecorder r;
    const std::size_t act = 64 * kMB;
    const std::size_t in = 8 * kMB;
    r.record(ev(0, trace::EventKind::kMalloc, 1, in, "", -1,
                Category::kInput));
    r.record(ev(0, trace::EventKind::kMalloc, 2, act));
    r.record(ev(10, trace::EventKind::kRead, 1, in, "conv1.forward",
                5, Category::kInput));
    r.record(ev(110, trace::EventKind::kWrite, 2, act,
                "conv1.forward", 5));
    r.record(ev(170, trace::EventKind::kRead, 2, act,
                "conv1.backward.dgrad", 42));
    r.record(ev(200, trace::EventKind::kFree, 2, act));
    r.record(ev(210, trace::EventKind::kFree, 1, in, "", -1,
                Category::kInput));
    RecomputePlanner planner(RecomputeOptions{});
    EXPECT_TRUE(planner.plan(analysis::TraceView(r)).decisions.empty());
}

TEST(RecomputePlanner, MinBlockFilterDropsSmallBlocks)
{
    RecomputeOptions opts;
    opts.min_block_bytes = 128 * kMB;
    RecomputePlanner planner(opts);
    EXPECT_TRUE(planner.plan(analysis::TraceView(activation_trace()))
                    .decisions.empty());
}

TEST(RecomputePlanner, PeakCreditUsesComputeAdjustedWindow)
{
    // A transient spike inside the activation's absence window
    // [gap_start, gap_end - cost): the dropped block is absent
    // there, so its size counts as peak reduction.
    trace::TraceRecorder r;
    const std::size_t act = 64 * kMB;
    const std::size_t spike = 32 * kMB;
    r.record(ev(0, trace::EventKind::kMalloc, 2, kMB));
    r.record(ev(0, trace::EventKind::kMalloc, 1, act));
    r.record(ev(5, trace::EventKind::kRead, 2, kMB, "f.forward", 1));
    r.record(ev(105, trace::EventKind::kWrite, 1, act, "f.forward", 1));
    r.record(ev(5 * kNsPerMs, trace::EventKind::kMalloc, 3, spike));
    r.record(ev(6 * kNsPerMs, trace::EventKind::kFree, 3, spike));
    r.record(ev(10 * kNsPerMs, trace::EventKind::kRead, 1, act,
                "f.backward.dgrad", 9));
    r.record(ev(11 * kNsPerMs, trace::EventKind::kFree, 1, act));
    r.record(ev(11 * kNsPerMs, trace::EventKind::kFree, 2, kMB));

    RecomputePlanner planner(RecomputeOptions{});
    const auto plan = planner.plan(analysis::TraceView(r));
    ASSERT_EQ(plan.decisions.size(), 1u);
    EXPECT_EQ(plan.original_peak_bytes, act + spike + kMB);
    EXPECT_EQ(plan.peak_reduction_bytes, act);
}

}  // namespace
}  // namespace relief
}  // namespace pinpoint
