/**
 * @file
 * Unified relief-strategy planner tests: the zoo-wide hybrid
 * dominance property (hybrid peak reduction >= max of the pure
 * strategies at equal overhead budget), the recompute-cheaper-than-
 * swap regression, budget accounting, shared-link scheduling of the
 * swap legs, and determinism.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/trace_view.h"
#include "core/check.h"
#include "nn/model_registry.h"
#include "relief/strategy_planner.h"
#include "runtime/session.h"

namespace pinpoint {
namespace relief {
namespace {

constexpr std::size_t kMB = 1024 * 1024;

/** Per-Strategy arrays are read by enumerator, never by position
 * (the PR 6 bug class; enforced repo-wide by pinpoint_lint). */
constexpr std::size_t
at(Strategy s)
{
    return static_cast<std::size_t>(s);
}

trace::MemoryEvent
ev(TimeNs t, trace::EventKind kind, BlockId block, std::size_t size,
   const char *op = "", std::int32_t op_index = -1)
{
    trace::MemoryEvent e;
    e.time = t;
    e.kind = kind;
    e.block = block;
    e.size = size;
    e.tensor = block;
    e.category = Category::kIntermediate;
    e.op_index = op_index;
    e.op = op;
    return e;
}

/** Slow-link options so swaps are expensive relative to compute. */
StrategyOptions
slow_link_options()
{
    StrategyOptions opts;
    opts.link = analysis::LinkBandwidth{1.0e9, 1.0e9};
    return opts;
}

/**
 * A 64 MB activation produced by a 1 us forward op, with a 10 ms
 * gap to its backward use. At 1 GB/s the swap round trip needs
 * ~128 ms — a ~118 ms stall — while recomputing costs 1 us: the
 * textbook recompute-cheaper-than-swap tensor.
 */
trace::TraceRecorder
recompute_cheaper_trace()
{
    trace::TraceRecorder r;
    const std::size_t act = 64 * kMB;
    r.record(ev(0, trace::EventKind::kMalloc, 3, 4 * kMB));
    r.record(ev(0, trace::EventKind::kMalloc, 1, act));
    r.record(ev(10, trace::EventKind::kRead, 3, 4 * kMB, "f.forward",
                1));
    r.record(ev(10 + kNsPerUs, trace::EventKind::kWrite, 1, act,
                "f.forward", 1));
    // Transient spike inside the gap puts the peak there.
    r.record(ev(5 * kNsPerMs, trace::EventKind::kMalloc, 2, 32 * kMB));
    r.record(ev(6 * kNsPerMs, trace::EventKind::kFree, 2, 32 * kMB));
    r.record(ev(10 * kNsPerMs, trace::EventKind::kRead, 1, act,
                "f.backward.dgrad", 9));
    r.record(ev(11 * kNsPerMs, trace::EventKind::kFree, 1, act));
    r.record(ev(11 * kNsPerMs, trace::EventKind::kFree, 3, 4 * kMB));
    return r;
}

TEST(StrategyNames, RoundTrip)
{
    EXPECT_STREQ(strategy_name(Strategy::kSwapOnly), "swap");
    EXPECT_STREQ(strategy_name(Strategy::kRecomputeOnly),
                 "recompute");
    EXPECT_STREQ(strategy_name(Strategy::kHybrid), "hybrid");
    EXPECT_EQ(strategy_from_name("swap"), Strategy::kSwapOnly);
    EXPECT_EQ(strategy_from_name("swap-only"), Strategy::kSwapOnly);
    EXPECT_EQ(strategy_from_name("recompute"),
              Strategy::kRecomputeOnly);
    EXPECT_STREQ(strategy_name(Strategy::kPeerOnly), "peer");
    EXPECT_EQ(strategy_from_name("peer"), Strategy::kPeerOnly);
    EXPECT_EQ(strategy_from_name("peer-only"), Strategy::kPeerOnly);
    EXPECT_EQ(strategy_from_name("peer-offload"),
              Strategy::kPeerOnly);
    EXPECT_EQ(strategy_from_name("hybrid"), Strategy::kHybrid);
    EXPECT_THROW(strategy_from_name("teleport"), Error);
    EXPECT_STREQ(mechanism_name(Mechanism::kSwap), "swap");
    EXPECT_STREQ(mechanism_name(Mechanism::kRecompute), "recompute");
    EXPECT_STREQ(mechanism_name(Mechanism::kPeer), "peer");
}

/**
 * Slow host link, fast two-device peer interconnect: the 64 MB
 * activation's 10 ms gap cannot hide a 1 GB/s host round trip
 * (~128 ms) but trivially hides a 48 GB/s peer round trip (~2.7 ms),
 * so peer offload is the free mechanism here.
 */
StrategyOptions
fast_peer_options()
{
    StrategyOptions opts = slow_link_options();
    opts.devices = 2;
    opts.interconnect = sim::InterconnectSpec::nvlink();
    return opts;
}

TEST(StrategyPlanner, PeerUnavailableOnASingleDevice)
{
    StrategyPlanner planner(slow_link_options());
    const analysis::TraceView r(recompute_cheaper_trace());

    EXPECT_FALSE(slow_link_options().peer_available());
    const auto rep = planner.plan(r, Strategy::kPeerOnly);
    EXPECT_FALSE(rep.available);
    EXPECT_TRUE(rep.decisions.empty());
    EXPECT_EQ(rep.peak_reduction_bytes, 0u);
    EXPECT_EQ(rep.measured_peak_reduction, 0u);
    EXPECT_EQ(rep.new_peak_bytes, rep.original_peak_bytes);
    EXPECT_EQ(rep.predicted_overhead, 0);
    EXPECT_EQ(rep.measured_overhead, 0);

    // plan_all carries the same unavailable report in enum order.
    const auto all = planner.plan_all(r);
    EXPECT_TRUE(all[at(Strategy::kSwapOnly)].available);
    EXPECT_TRUE(all[at(Strategy::kRecomputeOnly)].available);
    EXPECT_FALSE(all[at(Strategy::kPeerOnly)].available);
    EXPECT_TRUE(all[at(Strategy::kHybrid)].available);
    for (int s = 0; s < kNumStrategies; ++s)
        EXPECT_EQ(all[static_cast<std::size_t>(s)].strategy,
                  static_cast<Strategy>(s));
}

TEST(StrategyPlanner, PeerOffloadIsPricedOnThePeerLink)
{
    EXPECT_TRUE(fast_peer_options().peer_available());
    StrategyPlanner planner(fast_peer_options());
    const analysis::TraceView r(recompute_cheaper_trace());

    const auto peer_only = planner.plan(r, Strategy::kPeerOnly);
    ASSERT_TRUE(peer_only.available);
    ASSERT_EQ(peer_only.decisions.size(), 1u);
    const ReliefDecision &d = peer_only.decisions[0];
    EXPECT_EQ(d.mechanism, Mechanism::kPeer);
    EXPECT_EQ(d.size, 64 * kMB);
    // The 10 ms gap hides the fast peer round trip: free relief on
    // a link the swap mechanism cannot have (the host link stalls).
    EXPECT_GT(d.hide_ratio, 1.0);
    EXPECT_EQ(d.overhead, 0);
    EXPECT_EQ(peer_only.predicted_overhead, 0);
    EXPECT_EQ(peer_only.peak_reduction_bytes, 64 * kMB);
    EXPECT_EQ(peer_only.peer_decisions, 1u);
    EXPECT_EQ(peer_only.total_peer_bytes, 64 * kMB);
    EXPECT_EQ(peer_only.swap_decisions, 0u);
    EXPECT_EQ(peer_only.recompute_decisions, 0u);
    // The peer legs run on the peer link's executor, not the host's.
    EXPECT_EQ(peer_only.swap_execution.executed_decisions, 0u);
    EXPECT_EQ(peer_only.peer_execution.executed_decisions, 1u);

    // Hybrid sees all three mechanisms and takes the free one over
    // the ~118 ms swap stall and the 1 us recompute.
    const auto hybrid = planner.plan(r, Strategy::kHybrid);
    ASSERT_EQ(hybrid.decisions.size(), 1u);
    EXPECT_EQ(hybrid.decisions[0].mechanism, Mechanism::kPeer);
    EXPECT_EQ(hybrid.predicted_overhead, 0);
    EXPECT_EQ(hybrid.peak_reduction_bytes, 64 * kMB);
}

TEST(StrategyPlanner, HybridPicksRecomputeWhenCheaperThanSwapStall)
{
    StrategyPlanner planner(slow_link_options());
    const analysis::TraceView r(recompute_cheaper_trace());

    const auto swap_only = planner.plan(r, Strategy::kSwapOnly);
    const auto hybrid = planner.plan(r, Strategy::kHybrid);

    // The swap option stalls ~118 ms; recomputing costs 1 us.
    ASSERT_EQ(swap_only.decisions.size(), 1u);
    EXPECT_GT(swap_only.predicted_overhead, 100 * kNsPerMs);
    ASSERT_EQ(hybrid.decisions.size(), 1u);
    EXPECT_EQ(hybrid.decisions[0].mechanism, Mechanism::kRecompute);
    EXPECT_EQ(hybrid.decisions[0].producer, "f.forward");
    EXPECT_EQ(hybrid.predicted_overhead, kNsPerUs);
    EXPECT_EQ(hybrid.peak_reduction_bytes, 64 * kMB);
    EXPECT_GE(hybrid.peak_reduction_bytes,
              swap_only.peak_reduction_bytes);
}

TEST(StrategyPlanner, ZeroBudgetKeepsOnlyHideableSwaps)
{
    StrategyOptions opts = slow_link_options();
    opts.overhead_budget = 0;
    StrategyPlanner planner(opts);
    const analysis::TraceView r(recompute_cheaper_trace());

    // Nothing is free here (the swap stalls, the recompute costs a
    // re-run), so a zero budget buys zero decisions.
    for (Strategy s : {Strategy::kSwapOnly, Strategy::kRecomputeOnly,
                       Strategy::kHybrid}) {
        const auto rep = planner.plan(r, s);
        EXPECT_TRUE(rep.decisions.empty())
            << strategy_name(s) << " spent overhead with zero budget";
        EXPECT_EQ(rep.predicted_overhead, 0u);
    }
}

TEST(StrategyPlanner, ReportAccountingIsConsistent)
{
    StrategyPlanner planner(slow_link_options());
    const auto rep =
        planner.plan(analysis::TraceView(recompute_cheaper_trace()),
                     Strategy::kHybrid);
    EXPECT_EQ(rep.swap_decisions + rep.recompute_decisions,
              rep.decisions.size());
    std::size_t swapped = 0, recomputed = 0;
    TimeNs overhead = 0;
    for (const auto &d : rep.decisions) {
        (d.mechanism == Mechanism::kSwap ? swapped : recomputed) +=
            d.size;
        overhead += d.overhead;
    }
    EXPECT_EQ(swapped, rep.total_swapped_bytes);
    EXPECT_EQ(recomputed, rep.total_recomputed_bytes);
    EXPECT_EQ(overhead, rep.predicted_overhead);
    // Bytes absent at the original peak instant bound the global
    // peak drop: relieving the peak can surface a second ridge
    // elsewhere, so measured <= predicted, never more.
    EXPECT_GT(rep.measured_peak_reduction, 0u);
    EXPECT_LE(rep.measured_peak_reduction, rep.peak_reduction_bytes);
    // No swap legs here, so no link stall: the scheduled overhead is
    // exactly the predicted recompute cost.
    EXPECT_EQ(rep.measured_overhead, rep.predicted_overhead);
}

TEST(StrategyPlanner, PlansAreDeterministic)
{
    StrategyPlanner planner(slow_link_options());
    const analysis::TraceView r(recompute_cheaper_trace());
    for (Strategy s : {Strategy::kSwapOnly, Strategy::kRecomputeOnly,
                       Strategy::kHybrid}) {
        const auto a = planner.plan(r, s);
        const auto b = planner.plan(r, s);
        ASSERT_EQ(a.decisions.size(), b.decisions.size());
        for (std::size_t i = 0; i < a.decisions.size(); ++i) {
            EXPECT_EQ(a.decisions[i].mechanism,
                      b.decisions[i].mechanism);
            EXPECT_EQ(a.decisions[i].block, b.decisions[i].block);
            EXPECT_EQ(a.decisions[i].gap_start,
                      b.decisions[i].gap_start);
            EXPECT_EQ(a.decisions[i].overhead,
                      b.decisions[i].overhead);
        }
        EXPECT_EQ(a.peak_reduction_bytes, b.peak_reduction_bytes);
        EXPECT_EQ(a.new_peak_bytes, b.new_peak_bytes);
    }
}

/**
 * Zoo-wide dominance property: for every registry model and a
 * ladder of overhead budgets, the hybrid strategy's peak reduction
 * is at least max(swap-only, recompute-only, peer-only) while every
 * strategy respects the budget. This is the contract the hybrid
 * planner guarantees structurally (it adopts a pure selection
 * whenever the union greedy loses to it).
 */
TEST(StrategyPlanner, HybridDominatesPureStrategiesZooWide)
{
    const auto spec = sim::DeviceSpec::titan_x_pascal();
    const TimeNs budgets[] = {0, kNsPerMs, 100 * kNsPerMs,
                              kUnlimitedBudget};
    for (const auto &entry : nn::model_registry()) {
        SCOPED_TRACE(entry.name);
        runtime::SessionConfig config;
        config.batch = 8;
        config.iterations = 2;
        const auto result =
            runtime::run_training(entry.build(), config);

        for (TimeNs budget : budgets) {
            SCOPED_TRACE(budget);
            StrategyOptions opts;
            opts.link = analysis::LinkBandwidth{spec.d2h_bw_bps,
                                                spec.h2d_bw_bps};
            opts.overhead_budget = budget;
            opts.devices = 2;
            opts.interconnect = sim::InterconnectSpec::nvlink();
            StrategyPlanner planner(opts);

            const auto all = planner.plan_all(result.view());
            const auto &swap_only = all[at(Strategy::kSwapOnly)];
            const auto &rec_only =
                all[at(Strategy::kRecomputeOnly)];
            const auto &peer_only = all[at(Strategy::kPeerOnly)];
            const auto &hybrid = all[at(Strategy::kHybrid)];
            ASSERT_TRUE(peer_only.available);

            if (budget != kUnlimitedBudget) {
                EXPECT_LE(swap_only.predicted_overhead, budget);
                EXPECT_LE(rec_only.predicted_overhead, budget);
                EXPECT_LE(peer_only.predicted_overhead, budget);
                EXPECT_LE(hybrid.predicted_overhead, budget);
            }
            EXPECT_GE(hybrid.peak_reduction_bytes,
                      std::max({swap_only.peak_reduction_bytes,
                                rec_only.peak_reduction_bytes,
                                peer_only.peak_reduction_bytes}))
                << "hybrid lost to a pure strategy at equal budget";
            // Predicted dominance ties break on overhead: at equal
            // reduction the hybrid never pays more than a pure
            // strategy would.
            for (const ReliefReport *pure :
                 {&swap_only, &rec_only, &peer_only}) {
                if (hybrid.peak_reduction_bytes ==
                    pure->peak_reduction_bytes) {
                    EXPECT_LE(hybrid.predicted_overhead,
                              pure->predicted_overhead)
                        << strategy_name(pure->strategy);
                }
            }
            // Peer offload never beats the hybrid at equal budget
            // unless its measured overhead is lower. "Beats" is on
            // the budgeted objective (predicted peak reduction):
            // measured numbers include emergent link contention the
            // selection cannot see, so a lower measured overhead is
            // the one legitimate way the pure peer plan may come
            // out ahead of the mix.
            if (peer_only.measured_overhead >=
                hybrid.measured_overhead) {
                EXPECT_LE(peer_only.peak_reduction_bytes,
                          hybrid.peak_reduction_bytes)
                    << "peer offload beat hybrid at equal budget "
                       "without a measured overhead advantage";
            }
            // Pure plans only touch their own mechanism and link.
            EXPECT_EQ(rec_only.swap_decisions, 0u);
            EXPECT_EQ(rec_only.peer_decisions, 0u);
            EXPECT_EQ(
                rec_only.swap_execution.executed_decisions, 0u);
            EXPECT_EQ(peer_only.swap_decisions, 0u);
            EXPECT_EQ(peer_only.recompute_decisions, 0u);
            EXPECT_EQ(
                peer_only.swap_execution.executed_decisions, 0u);
            EXPECT_EQ(peer_only.peer_execution.executed_decisions,
                      peer_only.peer_decisions);
            // Swap legs are link-scheduled: contention can only add
            // stall beyond the per-decision prediction.
            TimeNs swap_leg_overhead = 0;
            for (const auto &d : hybrid.decisions)
                if (d.mechanism == Mechanism::kSwap)
                    swap_leg_overhead += d.overhead;
            EXPECT_GE(hybrid.swap_execution.measured_stall,
                      swap_leg_overhead);
            // Predicted reduction never exceeds the original peak.
            EXPECT_LE(hybrid.peak_reduction_bytes,
                      hybrid.original_peak_bytes);
        }
    }
}

}  // namespace
}  // namespace relief
}  // namespace pinpoint
