/** @file Unit tests for the direct (cudaMalloc-per-tensor) baseline. */
#include <gtest/gtest.h>

#include "alloc/device_memory.h"
#include "alloc/direct_allocator.h"
#include "sim/clock.h"
#include "sim/cost_model.h"

namespace pinpoint {
namespace alloc {
namespace {

class DirectAllocatorTest : public ::testing::Test
{
  protected:
    DeviceMemory device_{256ull * 1024 * 1024};
    sim::VirtualClock clock_;
    sim::CostModel cost_{sim::DeviceSpec::titan_x_pascal()};
    DirectAllocator alloc_{device_, clock_, cost_};
};

TEST_F(DirectAllocatorTest, EveryAllocationIsADriverCall)
{
    alloc_.allocate(1024);
    alloc_.allocate(2048);
    EXPECT_EQ(alloc_.stats().alloc_count, 2u);
    EXPECT_EQ(alloc_.stats().device_alloc_count, 2u);
    EXPECT_EQ(alloc_.stats().cache_hit_count, 0u);
}

TEST_F(DirectAllocatorTest, AdvancesClockByDriverCosts)
{
    const TimeNs t0 = clock_.now();
    const Block b = alloc_.allocate(1024);
    EXPECT_EQ(clock_.now() - t0, cost_.cuda_malloc_time());
    const TimeNs t1 = clock_.now();
    alloc_.deallocate(b.id);
    EXPECT_EQ(clock_.now() - t1, cost_.cuda_free_time());
}

TEST_F(DirectAllocatorTest, BlockIdsAreNeverReused)
{
    const Block a = alloc_.allocate(512);
    alloc_.deallocate(a.id);
    const Block b = alloc_.allocate(512);
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(b.ptr, a.ptr) << "memory may be reused; ids may not";
}

TEST_F(DirectAllocatorTest, StatsTrackLiveBytes)
{
    const Block a = alloc_.allocate(1024 * 1024);
    EXPECT_EQ(alloc_.stats().allocated_bytes, 1024u * 1024u);
    EXPECT_EQ(alloc_.stats().reserved_bytes, 1024u * 1024u);
    alloc_.deallocate(a.id);
    EXPECT_EQ(alloc_.stats().allocated_bytes, 0u);
    EXPECT_EQ(alloc_.stats().reserved_bytes, 0u);
    EXPECT_EQ(alloc_.stats().peak_allocated_bytes, 1024u * 1024u);
}

TEST_F(DirectAllocatorTest, BlockLookupAndErrors)
{
    const Block a = alloc_.allocate(4096);
    EXPECT_EQ(alloc_.block(a.id).ptr, a.ptr);
    EXPECT_EQ(alloc_.live_blocks(), 1u);
    alloc_.deallocate(a.id);
    EXPECT_THROW(alloc_.block(a.id), Error);
    EXPECT_THROW(alloc_.deallocate(a.id), Error);
    EXPECT_THROW(alloc_.allocate(0), Error);
}

TEST_F(DirectAllocatorTest, PropagatesDeviceOom)
{
    alloc_.allocate(200ull * 1024 * 1024);
    EXPECT_THROW(alloc_.allocate(100ull * 1024 * 1024),
                 DeviceOomError);
}

}  // namespace
}  // namespace alloc
}  // namespace pinpoint
