/** @file Unit tests for the simulated device address space. */
#include <gtest/gtest.h>

#include "alloc/device_memory.h"

namespace pinpoint {
namespace alloc {
namespace {

constexpr std::size_t kMB = 1024 * 1024;

TEST(DeviceMemory, AllocationsAreAlignedAndDisjoint)
{
    DeviceMemory dm(64 * kMB);
    const DevPtr a = dm.allocate(1000);
    const DevPtr b = dm.allocate(1000);
    EXPECT_EQ(a % DeviceMemory::kSegmentAlignment, 0u);
    EXPECT_EQ(b % DeviceMemory::kSegmentAlignment, 0u);
    EXPECT_GE(b, a + 1024);  // rounded to alignment
    EXPECT_EQ(dm.reservation_size(a), 1024u);
}

TEST(DeviceMemory, ReservedBytesTracksRoundedSizes)
{
    DeviceMemory dm(64 * kMB);
    dm.allocate(1);
    EXPECT_EQ(dm.reserved_bytes(), 512u);
    dm.allocate(512);
    EXPECT_EQ(dm.reserved_bytes(), 1024u);
    EXPECT_EQ(dm.num_segments(), 2u);
}

TEST(DeviceMemory, FreeReturnsMemory)
{
    DeviceMemory dm(64 * kMB);
    const DevPtr a = dm.allocate(kMB);
    dm.free(a);
    EXPECT_EQ(dm.reserved_bytes(), 0u);
    EXPECT_EQ(dm.free_bytes(), dm.capacity());
    EXPECT_EQ(dm.num_segments(), 0u);
}

TEST(DeviceMemory, FirstFitReusesLowestHole)
{
    DeviceMemory dm(64 * kMB);
    const DevPtr a = dm.allocate(kMB);
    const DevPtr b = dm.allocate(kMB);
    (void)b;
    dm.free(a);
    const DevPtr c = dm.allocate(kMB / 2);
    EXPECT_EQ(c, a) << "first fit must reuse the first hole";
}

TEST(DeviceMemory, CoalescesAdjacentFreeRegions)
{
    DeviceMemory dm(8 * kMB);
    const DevPtr a = dm.allocate(2 * kMB);
    const DevPtr b = dm.allocate(2 * kMB);
    const DevPtr c = dm.allocate(2 * kMB);
    dm.allocate(2 * kMB);  // fill the tail
    dm.free(a);
    dm.free(c);
    // a and c are separated by live b: largest hole is 2 MB.
    EXPECT_EQ(dm.largest_free_region(), 2 * kMB);
    dm.free(b);
    // Now a+b+c coalesce into 6 MB.
    EXPECT_EQ(dm.largest_free_region(), 6 * kMB);
}

TEST(DeviceMemory, OomCarriesDiagnostics)
{
    DeviceMemory dm(4 * kMB);
    dm.allocate(3 * kMB);
    try {
        dm.allocate(2 * kMB);
        FAIL() << "expected DeviceOomError";
    } catch (const DeviceOomError &e) {
        EXPECT_EQ(e.requested, 2 * kMB);
        EXPECT_EQ(e.free_bytes, kMB);
        EXPECT_EQ(e.largest_region, kMB);
    }
}

TEST(DeviceMemory, OomOnFragmentationDespiteEnoughTotalFree)
{
    DeviceMemory dm(6 * kMB);
    const DevPtr a = dm.allocate(2 * kMB);
    const DevPtr b = dm.allocate(2 * kMB);
    const DevPtr c = dm.allocate(2 * kMB);
    (void)b;
    dm.free(a);
    dm.free(c);
    EXPECT_EQ(dm.free_bytes(), 4 * kMB);
    EXPECT_THROW(dm.allocate(3 * kMB), DeviceOomError);
    EXPECT_GT(dm.external_fragmentation(), 0.0);
}

TEST(DeviceMemory, ExternalFragmentationZeroWhenContiguous)
{
    DeviceMemory dm(8 * kMB);
    dm.allocate(kMB);
    EXPECT_DOUBLE_EQ(dm.external_fragmentation(), 0.0);
}

TEST(DeviceMemory, DoubleFreeRejected)
{
    DeviceMemory dm(4 * kMB);
    const DevPtr a = dm.allocate(kMB);
    dm.free(a);
    EXPECT_THROW(dm.free(a), Error);
}

TEST(DeviceMemory, FreeOfUnknownPointerRejected)
{
    DeviceMemory dm(4 * kMB);
    EXPECT_THROW(dm.free(0xdeadbeef), Error);
}

TEST(DeviceMemory, ZeroAllocationRejected)
{
    DeviceMemory dm(4 * kMB);
    EXPECT_THROW(dm.allocate(0), Error);
}

TEST(DeviceMemory, PeakReservedIsHighWaterMark)
{
    DeviceMemory dm(16 * kMB);
    const DevPtr a = dm.allocate(4 * kMB);
    dm.allocate(2 * kMB);
    dm.free(a);
    EXPECT_EQ(dm.reserved_bytes(), 2 * kMB);
    EXPECT_EQ(dm.peak_reserved_bytes(), 6 * kMB);
}

TEST(DeviceMemory, ExhaustiveFillThenDrainRestoresInitialState)
{
    DeviceMemory dm(4 * kMB);
    std::vector<DevPtr> ptrs;
    for (int i = 0; i < 8; ++i)
        ptrs.push_back(dm.allocate(kMB / 2));
    EXPECT_THROW(dm.allocate(512), DeviceOomError);
    for (DevPtr p : ptrs)
        dm.free(p);
    EXPECT_EQ(dm.free_bytes(), dm.capacity());
    EXPECT_EQ(dm.largest_free_region(), dm.capacity());
}

}  // namespace
}  // namespace alloc
}  // namespace pinpoint
