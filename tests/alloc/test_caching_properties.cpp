/**
 * @file
 * Property-based tests of the caching allocator: random allocate /
 * deallocate / empty_cache workloads across seeds and size profiles,
 * with the allocator's full invariant walk after every mutation
 * batch.
 */
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "alloc/caching_allocator.h"
#include "alloc/device_memory.h"
#include "sim/clock.h"
#include "sim/cost_model.h"

namespace pinpoint {
namespace alloc {
namespace {

constexpr std::size_t kMB = 1024 * 1024;

/** Size profile of a random workload. */
struct Profile {
    const char *name;
    std::size_t min_bytes;
    std::size_t max_bytes;
};

class CachingProperty
    : public ::testing::TestWithParam<std::tuple<int, Profile>>
{
};

TEST_P(CachingProperty, RandomWorkloadPreservesInvariants)
{
    const auto [seed, profile] = GetParam();
    DeviceMemory device(3ull * 1024 * kMB);
    sim::VirtualClock clock;
    sim::CostModel cost(sim::DeviceSpec::titan_x_pascal());
    CachingAllocator alloc(device, clock, cost);

    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    std::uniform_int_distribution<std::size_t> size_dist(
        profile.min_bytes, profile.max_bytes);
    std::vector<Block> live;
    std::size_t live_bytes = 0;

    // Keep expected live volume well under the device capacity so
    // the workload probes allocator behavior, not device OOM.
    constexpr std::size_t kLiveCap = 1536ull * kMB;
    for (int step = 0; step < 1200; ++step) {
        const auto action = rng() % 100;
        if ((action < 55 && live_bytes < kLiveCap) || live.empty()) {
            const std::size_t request = size_dist(rng);
            const Block b = alloc.allocate(request);
            EXPECT_GE(b.size, b.requested);
            EXPECT_EQ(b.size % CachingAllocator::kMinBlockSize, 0u);
            live_bytes += b.size;
            live.push_back(b);
        } else if (action < 95) {
            const std::size_t i = rng() % live.size();
            live_bytes -= live[i].size;
            alloc.deallocate(live[i].id);
            live[i] = live.back();
            live.pop_back();
        } else {
            alloc.empty_cache();
        }
        if (step % 64 == 0)
            alloc.check_invariants();

        // Core accounting invariants hold at every step.
        ASSERT_EQ(alloc.stats().allocated_bytes, live_bytes);
        ASSERT_LE(alloc.stats().allocated_bytes,
                  alloc.stats().reserved_bytes);
        ASSERT_EQ(alloc.stats().reserved_bytes,
                  device.reserved_bytes());
        ASSERT_EQ(alloc.live_blocks(), live.size());
    }

    // Live blocks never overlap.
    std::vector<Block> sorted = live;
    std::sort(sorted.begin(), sorted.end(),
              [](const Block &a, const Block &b) {
                  return a.ptr < b.ptr;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        ASSERT_GE(sorted[i].ptr,
                  sorted[i - 1].ptr + sorted[i - 1].size)
            << "blocks overlap";
    }

    // Drain everything: allocator and device return to pristine.
    for (const Block &b : live)
        alloc.deallocate(b.id);
    alloc.check_invariants();
    alloc.empty_cache();
    EXPECT_EQ(alloc.stats().allocated_bytes, 0u);
    EXPECT_EQ(alloc.stats().reserved_bytes, 0u);
    EXPECT_EQ(device.reserved_bytes(), 0u);
    EXPECT_EQ(alloc.stats().alloc_count, alloc.stats().free_count);
    EXPECT_EQ(alloc.stats().device_alloc_count,
              alloc.stats().device_free_count);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProfiles, CachingProperty,
    ::testing::Combine(
        ::testing::Range(0, 6),
        ::testing::Values(
            Profile{"small", 1, 64 * 1024},
            Profile{"mixed", 256, 8 * kMB},
            Profile{"large", kMB, 64 * kMB})),
    [](const auto &info) {
        return std::string(std::get<1>(info.param).name) + "_seed" +
               std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace alloc
}  // namespace pinpoint
