/** @file Unit and property tests for the buddy allocator. */
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "alloc/buddy_allocator.h"
#include "alloc/device_memory.h"
#include "sim/clock.h"
#include "sim/cost_model.h"

namespace pinpoint {
namespace alloc {
namespace {

constexpr std::size_t kMB = 1024 * 1024;

class BuddyTest : public ::testing::Test
{
  protected:
    DeviceMemory device_{256 * kMB};
    sim::VirtualClock clock_;
    sim::CostModel cost_{sim::DeviceSpec::tiny_test_device()};
    BuddyAllocator alloc_{device_, clock_, cost_, 64 * kMB};
};

TEST(BuddyRounding, RoundPow2)
{
    EXPECT_EQ(BuddyAllocator::round_pow2(1), 512u);
    EXPECT_EQ(BuddyAllocator::round_pow2(512), 512u);
    EXPECT_EQ(BuddyAllocator::round_pow2(513), 1024u);
    EXPECT_EQ(BuddyAllocator::round_pow2(3 * kMB), 4 * kMB);
}

TEST_F(BuddyTest, ArenaReservedUpFront)
{
    EXPECT_EQ(alloc_.arena_bytes(), 64 * kMB);
    EXPECT_EQ(device_.reserved_bytes(), 64 * kMB);
    EXPECT_EQ(alloc_.stats().device_alloc_count, 1u);
    alloc_.check_invariants();
}

TEST_F(BuddyTest, BlocksArePow2AndAligned)
{
    const Block b = alloc_.allocate(3000);
    EXPECT_EQ(b.size, 4096u);
    EXPECT_EQ(b.requested, 3000u);
    EXPECT_EQ((b.ptr - DeviceMemory::kBaseAddress) % b.size, 0u);
    alloc_.check_invariants();
}

TEST_F(BuddyTest, SplitAndCoalesceRoundTrip)
{
    const Block a = alloc_.allocate(512);
    EXPECT_GT(alloc_.stats().split_count, 0u)
        << "first small block splits the arena down";
    alloc_.deallocate(a.id);
    EXPECT_GT(alloc_.stats().merge_count, 0u);
    alloc_.check_invariants();
    // After full coalescing, the arena-sized block is available
    // again.
    const Block whole = alloc_.allocate(64 * kMB);
    EXPECT_EQ(whole.size, 64 * kMB);
    alloc_.check_invariants();
}

TEST_F(BuddyTest, BuddiesOnlyMergeWithTheirPair)
{
    const Block a = alloc_.allocate(kMB);
    const Block b = alloc_.allocate(kMB);
    const Block c = alloc_.allocate(kMB);
    (void)a;
    alloc_.deallocate(b.id);
    alloc_.check_invariants();
    alloc_.deallocate(c.id);
    alloc_.check_invariants();
    // a is still live: the arena cannot fully coalesce.
    EXPECT_THROW(alloc_.allocate(64 * kMB), DeviceOomError);
}

TEST_F(BuddyTest, InternalFragmentationIsVisible)
{
    // 33 MB rounds to 64 MB: nearly half the block is waste — the
    // buddy trade-off the ablation quantifies.
    const Block b = alloc_.allocate(33 * kMB);
    EXPECT_EQ(b.size, 64 * kMB);
    EXPECT_EQ(alloc_.stats().allocated_bytes, 64 * kMB);
    alloc_.check_invariants();
}

TEST_F(BuddyTest, OversizedRequestRejected)
{
    EXPECT_THROW(alloc_.allocate(65 * kMB), Error);
}

TEST_F(BuddyTest, ExhaustionThrowsOom)
{
    alloc_.allocate(32 * kMB);
    alloc_.allocate(32 * kMB);
    EXPECT_THROW(alloc_.allocate(512), DeviceOomError);
}

TEST_F(BuddyTest, ErrorsOnBadArguments)
{
    EXPECT_THROW(alloc_.allocate(0), Error);
    EXPECT_THROW(alloc_.deallocate(42), Error);
    EXPECT_THROW(alloc_.block(42), Error);
}

TEST_F(BuddyTest, ArenaReleasedOnDestruction)
{
    {
        BuddyAllocator local(device_, clock_, cost_, 16 * kMB);
        EXPECT_EQ(device_.reserved_bytes(), (64 + 16) * kMB);
    }
    EXPECT_EQ(device_.reserved_bytes(), 64 * kMB);
}

class BuddyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BuddyProperty, RandomWorkloadPreservesInvariants)
{
    DeviceMemory device(512 * kMB);
    sim::VirtualClock clock;
    sim::CostModel cost(sim::DeviceSpec::tiny_test_device());
    BuddyAllocator alloc(device, clock, cost, 256 * kMB);

    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
    std::uniform_int_distribution<std::size_t> size_dist(1, 4 * kMB);
    std::vector<Block> live;
    std::size_t live_bytes = 0;

    for (int step = 0; step < 1500; ++step) {
        if ((rng() % 100 < 55 && live_bytes < 128 * kMB) ||
            live.empty()) {
            try {
                const Block b = alloc.allocate(size_dist(rng));
                live_bytes += b.size;
                live.push_back(b);
            } catch (const DeviceOomError &) {
                // Internal fragmentation can exhaust the arena
                // early; that is legal. Drain something instead.
                ASSERT_FALSE(live.empty());
            }
        } else {
            const std::size_t i = rng() % live.size();
            live_bytes -= live[i].size;
            alloc.deallocate(live[i].id);
            live[i] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(alloc.stats().allocated_bytes, live_bytes);
        if (step % 128 == 0)
            alloc.check_invariants();
    }
    for (const Block &b : live)
        alloc.deallocate(b.id);
    alloc.check_invariants();
    EXPECT_EQ(alloc.stats().allocated_bytes, 0u);
    // Everything coalesced: the whole arena is one block again.
    EXPECT_EQ(alloc.allocate(256 * kMB).size, 256 * kMB);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace alloc
}  // namespace pinpoint
