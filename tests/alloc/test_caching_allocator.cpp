/** @file Unit tests for the PyTorch-style caching allocator. */
#include <gtest/gtest.h>

#include "alloc/caching_allocator.h"
#include "alloc/device_memory.h"
#include "sim/clock.h"
#include "sim/cost_model.h"

namespace pinpoint {
namespace alloc {
namespace {

constexpr std::size_t kKB = 1024;
constexpr std::size_t kMB = 1024 * 1024;

class CachingAllocatorTest : public ::testing::Test
{
  protected:
    DeviceMemory device_{2ull * 1024 * kMB};
    sim::VirtualClock clock_;
    sim::CostModel cost_{sim::DeviceSpec::titan_x_pascal()};
    CachingAllocator alloc_{device_, clock_, cost_};
};

TEST(CachingAllocatorRounding, RoundSizeTo512Multiples)
{
    EXPECT_EQ(CachingAllocator::round_size(1), 512u);
    EXPECT_EQ(CachingAllocator::round_size(512), 512u);
    EXPECT_EQ(CachingAllocator::round_size(513), 1024u);
    EXPECT_EQ(CachingAllocator::round_size(100 * kKB),
              100u * kKB);  // already a multiple
}

TEST(CachingAllocatorRounding, AllocationSizeTiers)
{
    // Small requests back onto 2 MB segments.
    EXPECT_EQ(CachingAllocator::allocation_size(512), 2 * kMB);
    EXPECT_EQ(CachingAllocator::allocation_size(1 * kMB), 2 * kMB);
    // Mid-size requests onto 20 MB segments.
    EXPECT_EQ(CachingAllocator::allocation_size(1 * kMB + 512),
              20 * kMB);
    EXPECT_EQ(CachingAllocator::allocation_size(9 * kMB), 20 * kMB);
    // Huge requests round to 2 MB granularity.
    EXPECT_EQ(CachingAllocator::allocation_size(10 * kMB), 10 * kMB);
    EXPECT_EQ(CachingAllocator::allocation_size(11 * kMB), 12 * kMB);
}

TEST_F(CachingAllocatorTest, FirstSmallAllocationCreatesSegment)
{
    const Block b = alloc_.allocate(1000);
    EXPECT_EQ(b.size, 1024u);
    EXPECT_EQ(b.requested, 1000u);
    EXPECT_EQ(alloc_.stats().device_alloc_count, 1u);
    EXPECT_EQ(alloc_.stats().reserved_bytes, 2 * kMB);
    EXPECT_EQ(alloc_.stats().allocated_bytes, 1024u);
    EXPECT_EQ(alloc_.stats().split_count, 1u);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, SecondSmallAllocationReusesSegment)
{
    alloc_.allocate(1000);
    alloc_.allocate(1000);
    EXPECT_EQ(alloc_.stats().device_alloc_count, 1u)
        << "both fit in one 2 MB segment";
    EXPECT_EQ(alloc_.stats().cache_hit_count, 1u);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, FreeThenAllocateSameSizeIsAHit)
{
    const Block a = alloc_.allocate(300 * kKB);
    const DevPtr ptr = a.ptr;
    alloc_.deallocate(a.id);
    const Block b = alloc_.allocate(300 * kKB);
    EXPECT_EQ(b.ptr, ptr) << "cached block must be reused";
    EXPECT_EQ(alloc_.stats().device_alloc_count, 1u);
    EXPECT_NE(a.id, b.id);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, CacheHitIsFastMissIsSlow)
{
    const TimeNs t0 = clock_.now();
    const Block a = alloc_.allocate(64 * kKB);  // miss: cudaMalloc
    const TimeNs miss_cost = clock_.now() - t0;
    alloc_.deallocate(a.id);
    const TimeNs t1 = clock_.now();
    alloc_.allocate(64 * kKB);  // hit
    const TimeNs hit_cost = clock_.now() - t1;
    EXPECT_GE(miss_cost, cost_.cuda_malloc_time());
    EXPECT_LT(hit_cost, miss_cost / 10);
}

TEST_F(CachingAllocatorTest, AdjacentFreeBlocksMerge)
{
    const Block a = alloc_.allocate(256 * kKB);
    const Block b = alloc_.allocate(256 * kKB);
    const Block c = alloc_.allocate(256 * kKB);
    ASSERT_EQ(b.ptr, a.ptr + a.size) << "expected contiguous split";
    alloc_.deallocate(a.id);
    EXPECT_EQ(alloc_.stats().merge_count, 0u)
        << "a has no free neighbors (b live, segment head)";
    alloc_.deallocate(c.id);
    EXPECT_EQ(alloc_.stats().merge_count, 1u)
        << "c merges with the free segment-tail remainder";
    alloc_.deallocate(b.id);
    EXPECT_EQ(alloc_.stats().merge_count, 3u)
        << "b merges with a and with the merged c+tail";
    // The whole segment is one free block again: a full-size small
    // request must be served from it without a new segment.
    const auto before = alloc_.stats().device_alloc_count;
    const Block d = alloc_.allocate(1 * kMB);
    EXPECT_EQ(d.ptr, a.ptr);
    EXPECT_EQ(alloc_.stats().device_alloc_count, before);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, LargePoolDoesNotSplitSmallRemainders)
{
    // 19.5 MB from a 20 MB segment: remainder 0.5 MB <= 1 MB is kept
    // attached (no split), so the block is 20 MB.
    const Block b = alloc_.allocate(19 * kMB + 512 * kKB);
    EXPECT_EQ(b.size, 20 * kMB);
    EXPECT_EQ(alloc_.stats().split_count, 0u);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, HugeRequestsGetExactRoundedSegments)
{
    // >= 10 MB requests allocate exact 2 MB-rounded segments.
    const Block b = alloc_.allocate(12 * kMB);
    EXPECT_EQ(b.size, 12 * kMB);
    EXPECT_EQ(alloc_.stats().split_count, 0u);
    // 12 MB + 1 B rounds to 12 MB + 512 B and rides a 14 MB segment;
    // the ~2 MB remainder (> 1 MB) is split off for reuse.
    const Block c = alloc_.allocate(12 * kMB + 1);
    EXPECT_EQ(c.size, 12 * kMB + 512);
    EXPECT_EQ(alloc_.stats().split_count, 1u);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, LargePoolSplitsBigRemainders)
{
    // 5 MB rides a 20 MB segment; the 15 MB remainder (> 1 MB)
    // splits off and serves the next large request with no new
    // segment.
    const Block b = alloc_.allocate(5 * kMB);
    EXPECT_EQ(b.size, 5 * kMB);
    EXPECT_EQ(alloc_.stats().split_count, 1u);
    const auto before = alloc_.stats().device_alloc_count;
    const Block c = alloc_.allocate(8 * kMB);
    EXPECT_EQ(c.ptr, b.ptr + b.size);
    EXPECT_EQ(alloc_.stats().device_alloc_count, before);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, SmallAndLargePoolsAreSeparate)
{
    const Block small = alloc_.allocate(100 * kKB);
    const Block large = alloc_.allocate(5 * kMB);
    alloc_.deallocate(small.id);
    alloc_.deallocate(large.id);
    // A small request must not carve the cached large block.
    const Block again = alloc_.allocate(100 * kKB);
    EXPECT_EQ(again.ptr, small.ptr);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, EmptyCacheReleasesWholeFreeSegments)
{
    const Block a = alloc_.allocate(1 * kMB);
    const Block b = alloc_.allocate(5 * kMB);
    alloc_.deallocate(a.id);
    alloc_.deallocate(b.id);
    EXPECT_EQ(alloc_.stats().reserved_bytes, 22 * kMB);
    alloc_.empty_cache();
    EXPECT_EQ(alloc_.stats().reserved_bytes, 0u);
    EXPECT_EQ(device_.reserved_bytes(), 0u);
    EXPECT_EQ(alloc_.stats().device_free_count, 2u);
    alloc_.check_invariants();
}

TEST_F(CachingAllocatorTest, EmptyCacheKeepsPartiallyUsedSegments)
{
    const Block a = alloc_.allocate(100 * kKB);
    const Block b = alloc_.allocate(100 * kKB);
    alloc_.deallocate(a.id);
    alloc_.empty_cache();
    // b's segment is still in use: nothing released.
    EXPECT_EQ(alloc_.stats().reserved_bytes, 2 * kMB);
    alloc_.deallocate(b.id);
    alloc_.empty_cache();
    EXPECT_EQ(alloc_.stats().reserved_bytes, 0u);
}

TEST_F(CachingAllocatorTest, SegmentsIntrospectionCoversEverything)
{
    alloc_.allocate(100 * kKB);
    alloc_.allocate(3 * kMB);
    const auto segs = alloc_.segments();
    ASSERT_EQ(segs.size(), 2u);
    for (const auto &seg : segs) {
        std::size_t covered = 0;
        for (const auto &blk : seg.blocks)
            covered += blk.size;
        EXPECT_EQ(covered, seg.size);
    }
}

TEST_F(CachingAllocatorTest, ErrorsOnBadArguments)
{
    EXPECT_THROW(alloc_.allocate(0), Error);
    EXPECT_THROW(alloc_.deallocate(999), Error);
    EXPECT_THROW(alloc_.block(999), Error);
}

TEST(CachingAllocatorOom, ReleasesCacheAndRetriesBeforeThrowing)
{
    DeviceMemory device(64 * kMB);
    sim::VirtualClock clock;
    sim::CostModel cost(sim::DeviceSpec::tiny_test_device());
    CachingAllocator alloc(device, clock, cost);

    const Block a = alloc.allocate(40 * kMB);
    alloc.deallocate(a.id);  // cached: device still 40 MB reserved
    EXPECT_EQ(device.reserved_bytes(), 40 * kMB);
    // 60 MB does not fit beside the cached 40 MB; the allocator must
    // release its cache and retry successfully.
    const Block b = alloc.allocate(60 * kMB);
    EXPECT_EQ(b.size, 60 * kMB);
    EXPECT_EQ(alloc.stats().device_free_count, 1u);
    alloc.check_invariants();
}

TEST(CachingAllocatorOom, ThrowsWhenTrulyExhausted)
{
    DeviceMemory device(32 * kMB);
    sim::VirtualClock clock;
    sim::CostModel cost(sim::DeviceSpec::tiny_test_device());
    CachingAllocator alloc(device, clock, cost);
    alloc.allocate(20 * kMB);
    EXPECT_THROW(alloc.allocate(20 * kMB), DeviceOomError);
}

}  // namespace
}  // namespace alloc
}  // namespace pinpoint
